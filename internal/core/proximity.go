// Package core implements the paper's primary contribution: computing the
// propagation delay and output transition time of a multi-input gate whose
// inputs switch in close temporal proximity, by repeated application of a
// dual-input proximity macromodel (Sections 3 and 4 of the paper).
//
// The entry point is Calculator.Evaluate, which runs Algorithm
// ProximityDelay (Figure 4-1):
//
//  1. Order the switching inputs by dominance — input i dominates j when
//     its solo output response crosses the measurement threshold first
//     (equivalently, the paper's condition s_ij > Δ(1)_i − Δ(1)_j).
//  2. Seed the cumulative delay with the most dominant input's Δ(1).
//  3. For each next input inside the proximity window, represent the inputs
//     absorbed so far by an equivalent waveform y* (the dominant input
//     shifted so its solo response crosses the threshold where the
//     cumulative response would), apply the dual-input macromodel to
//     (y*, y_i), and update the cumulative delay:
//     Δ(i) = Δ(i-1) + Δ(1)·(D(2)(τ_y1/Δ(1), τ_yi/Δ(1), s*/Δ(1)) − 1).
//  4. Add the characterized step-input correction, scaled linearly from
//     full at s ≤ 0 to zero at the window edge.
//
// The output transition time is computed by the same loop with the T(2)
// tables and the wider transition-time proximity window Δ + τ_out.
package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// InputEvent is one switching input presented to the calculator.
type InputEvent struct {
	Pin int
	Dir waveform.Direction
	// TT is the input transition time (full-swing ramp duration).
	TT float64
	// Cross is the absolute time the input crosses its measurement level
	// (Vil rising, Vih falling).
	Cross float64
}

// DualBackend supplies the dual-input proximity ratios. The table-backed
// implementation interpolates characterized grids; the simulation-backed one
// reproduces the paper's validation methodology ("we used HSPICE as the
// macromodel for processing the dual-input case").
type DualBackend interface {
	// Ratios returns Δ(2)/Δ(1) and τ(2)/τ(1) for reference pin ref and
	// other pin switching in direction dir with the given physical
	// parameters. d1 and tt1 are the reference input's single-input delay
	// and output transition time (the normalizers).
	Ratios(ref, other int, dir waveform.Direction, tauRef, tauOther, sStar, d1, tt1 float64) (dRatio, tRatio float64, err error)
}

// Calculator evaluates proximity-aware delays against a characterized gate
// model.
//
// Concurrency: Evaluate and SingleDelay never mutate the Calculator or its
// Model, so one Calculator may be shared by any number of goroutines (the
// levelized STA engine relies on this) — provided the configuration fields
// below are not modified concurrently and the active DualBackend is itself
// safe: the default table backend is read-only, SimBackend serializes its
// cache behind a mutex.
type Calculator struct {
	Model *macromodel.GateModel
	// Dual overrides the dual-input backend (nil = model tables).
	Dual DualBackend
	// DisableCorrection turns off the Section-4 corrective term (ablation).
	DisableCorrection bool
	// NaiveOrdering replaces dominance ordering with arrival-time ordering
	// (ablation of the paper's dominant-input identification).
	NaiveOrdering bool
	// CubicTables switches the table backend to cubic Hermite
	// interpolation (smoother between characterization grid nodes).
	CubicTables bool

	// tb caches the boxed table backend so Evaluate does not allocate an
	// interface value per call; rebuilt whenever the configuration it was
	// derived from changes. Atomic so concurrent Evaluates stay race-free.
	tb atomic.Pointer[tableBackend]
}

// NewCalculator builds a Calculator over the model's own tables.
func NewCalculator(m *macromodel.GateModel) *Calculator {
	return &Calculator{Model: m}
}

// Result is the outcome of a proximity evaluation.
type Result struct {
	// Delay is the propagation delay measured from the dominant input.
	Delay float64
	// OutputCross is the absolute time the output crosses its measurement
	// level.
	OutputCross float64
	// OutTT is the output transition time.
	OutTT float64
	// Dominant is the pin chosen as the most dominant input.
	Dominant int
	// Order lists the event indices in dominance order.
	Order []int
	// UsedDelay and UsedTT count inputs inside the delay and
	// transition-time proximity windows (including the dominant input).
	UsedDelay, UsedTT int
	// CorrectionApplied is the correction actually added to Delay.
	CorrectionApplied float64
}

// tableBackend adapts the model's characterized grids to DualBackend.
type tableBackend struct {
	m     *macromodel.GateModel
	cubic bool
}

func (b tableBackend) Ratios(ref, other int, dir waveform.Direction,
	tauRef, tauOther, sStar, d1, tt1 float64) (float64, float64, error) {
	dm := b.m.Dual(ref, other, dir)
	if dm == nil {
		return 0, 0, fmt.Errorf("core: no dual-input model for ref pin %d %v", ref, dir)
	}
	x1 := tauRef / d1
	x2 := tauOther / d1
	x3 := sStar / d1
	if b.cubic {
		return dm.EvalDelayRatioCubic(x1, x2, x3), dm.EvalTTRatioCubic(x1, x2, x3), nil
	}
	return dm.EvalDelayRatio(x1, x2, x3), dm.EvalTTRatio(x1, x2, x3), nil
}

// backend returns the active dual backend.
func (c *Calculator) backend() DualBackend {
	if c.Dual != nil {
		return c.Dual
	}
	tb := c.tb.Load()
	if tb == nil || tb.m != c.Model || tb.cubic != c.CubicTables {
		tb = &tableBackend{c.Model, c.CubicTables}
		c.tb.Store(tb)
	}
	return tb
}

// Evaluate runs Algorithm ProximityDelay over the events, which must all
// switch in the same direction (opposite-direction proximity is the glitch
// analysis; see InertialDelay).
func (c *Calculator) Evaluate(events []InputEvent) (*Result, error) {
	return c.evaluate(events, nil)
}

// evaluate is Evaluate with an optional decision-trace capture. ex == nil
// is the hot path: every capture hook is a dead nil-check, so the traced
// and untraced runs perform the identical arithmetic (EvaluateExplain's
// result is asserted bit-equal to Evaluate's in tests).
func (c *Calculator) evaluate(events []InputEvent, ex *Explain) (*Result, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("core: no switching inputs")
	}
	dir := events[0].Dir
	for _, e := range events {
		if e.Dir != dir {
			return nil, fmt.Errorf("core: mixed transition directions; use the glitch model for opposite transitions")
		}
		// !(TT > 0) rather than TT <= 0: NaN fails every ordered comparison,
		// and a NaN or infinite event would poison the dominance sort and
		// every table lookup downstream.
		if !(e.TT > 0) || math.IsInf(e.TT, 1) {
			return nil, fmt.Errorf("core: non-positive or non-finite transition time %v on pin %d", e.TT, e.Pin)
		}
		if math.IsNaN(e.Cross) || math.IsInf(e.Cross, 0) {
			return nil, fmt.Errorf("core: non-finite crossing time %v on pin %d", e.Cross, e.Pin)
		}
		if c.Model.Single(e.Pin, dir) == nil {
			return nil, fmt.Errorf("core: pin %d has no single-input model for %v inputs", e.Pin, dir)
		}
	}

	// Solo delays and solo output-crossing times, carved from one backing
	// allocation (Evaluate runs once per gate arc on the STA hot path).
	buf := make([]float64, 3*len(events))
	d1 := buf[:len(events)]
	tt1 := buf[len(events) : 2*len(events)]
	solo := buf[2*len(events):]
	for i, e := range events {
		s := c.Model.Single(e.Pin, dir)
		d1[i] = s.DelayAt(e.TT)
		tt1[i] = s.OutTTAt(e.TT)
		solo[i] = e.Cross + d1[i]
	}

	// Step 1: dominance order. For first-cause (parallel-conduction)
	// networks the earliest solo output crossing dominates — the paper's
	// pairwise condition s_ij > Δi − Δj. For last-cause (series-completion)
	// networks the LATEST solo crossing dominates (the paper's "analogous
	// argument" for rising inputs).
	caus := c.Model.Causation(dir)
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	switch {
	case c.NaiveOrdering:
		keys := make([]float64, len(events))
		for i, e := range events {
			keys[i] = e.Cross
		}
		sortByKey(order, keys, false)
	case caus == macromodel.LastCause:
		sortByKey(order, solo, true)
	default:
		sortByKey(order, solo, false)
	}
	if ex != nil {
		ex.Dir = dir
		ex.Causation = caus
		ex.NaiveOrdering = c.NaiveOrdering
		ex.Inputs = make([]ExplainInput, len(events))
		for i, e := range events {
			ex.Inputs[i] = ExplainInput{
				Pin: e.Pin, Dir: e.Dir, TT: e.TT, Cross: e.Cross,
				D1: d1[i], TT1: tt1[i], Solo: solo[i],
			}
		}
		ex.Order = append([]int(nil), order...)
	}

	y1 := order[0]
	ref := events[y1]
	refD1 := d1[y1]
	refTT1 := tt1[y1]
	be := c.backend()

	// Delay pass. First-cause window: inputs arriving after the cumulative
	// output crossing (s ≥ Δ(i-1)) cannot influence the delay — the
	// paper's while-loop condition — and dominance ordering makes later
	// list entries only further away, so we stop at the first such input.
	// Last-cause window: an earlier input stops mattering once its ramp
	// and solo response have completed well before the reference acts
	// (s ≤ −(τ_i + Δ(1)_i)); τ varies per input, so lapsed inputs are
	// skipped rather than terminating the loop.
	cum := refD1
	usedDelay := 1
	lastSep := 0.0
	lastWindow := cum
	for k := 1; k < len(order); k++ {
		yi := order[k]
		s := events[yi].Cross - ref.Cross
		if caus == macromodel.FirstCause {
			if s >= cum {
				if ex != nil {
					// The breaking input and everything after it: dominance
					// ordering guarantees later entries are only further out.
					ex.Delay = append(ex.Delay, AbsorbStep{
						Input: yi, Pin: events[yi].Pin, S: s, Window: cum,
						Pruned: true, Reason: "arrives after the cumulative output crossing (s >= delta)",
					})
					for _, yj := range order[k+1:] {
						ex.Delay = append(ex.Delay, AbsorbStep{
							Input: yj, Pin: events[yj].Pin, S: events[yj].Cross - ref.Cross, Window: cum,
							Pruned: true, Reason: "beyond the window edge (dominance order: no later input can re-enter)",
						})
					}
				}
				break
			}
		} else if s <= -(events[yi].TT + d1[yi] + refD1) {
			if ex != nil {
				ex.Delay = append(ex.Delay, AbsorbStep{
					Input: yi, Pin: events[yi].Pin, S: s, Window: events[yi].TT + d1[yi] + refD1,
					Pruned: true, Reason: "lapsed: ramp and solo response complete before the reference acts",
				})
			}
			continue
		}
		sStar := s + refD1 - cum
		dr, tr, err := be.Ratios(ref.Pin, events[yi].Pin, dir, ref.TT, events[yi].TT, sStar, refD1, refTT1)
		if err != nil {
			return nil, err
		}
		if caus == macromodel.FirstCause {
			lastWindow = cum
		} else {
			lastWindow = events[yi].TT + d1[yi] + refD1
		}
		if ex != nil {
			ex.Delay = append(ex.Delay, AbsorbStep{
				Input: yi, Pin: events[yi].Pin, S: s, SStar: sStar, Window: lastWindow,
				X1: ref.TT / refD1, X2: events[yi].TT / refD1, X3: sStar / refD1,
				DRatio: dr, TRatio: tr, CumBefore: cum,
			})
		}
		cum += refD1 * (dr - 1)
		if cum < 1e-15 {
			cum = 1e-15 // delay stays positive by the threshold policy
		}
		if ex != nil {
			ex.Delay[len(ex.Delay)-1].CumAfter = cum
		}
		usedDelay++
		lastSep = s
	}

	// Transition-time pass (window Δ(i-1) + τ(i-1)). Transition-time
	// perturbation ratios compose multiplicatively: equivalent to the
	// paper's additive perturbation to first order, but it stays positive
	// when several inputs each speed the transition up strongly (additive
	// composition collapses to zero for simultaneous fast inputs).
	ttCum := refTT1
	dcum := refD1
	usedTT := 1
	lastSepTT := 0.0
	lastWindowTT := dcum + ttCum
	for k := 1; k < len(order); k++ {
		yi := order[k]
		s := events[yi].Cross - ref.Cross
		if caus == macromodel.FirstCause {
			if s >= dcum+ttCum {
				if ex != nil {
					ex.TT = append(ex.TT, AbsorbStep{
						Input: yi, Pin: events[yi].Pin, S: s, Window: dcum + ttCum,
						Pruned: true, Reason: "arrives after the output transition completes (s >= delta + tau_out)",
					})
					for _, yj := range order[k+1:] {
						ex.TT = append(ex.TT, AbsorbStep{
							Input: yj, Pin: events[yj].Pin, S: events[yj].Cross - ref.Cross, Window: dcum + ttCum,
							Pruned: true, Reason: "beyond the window edge (dominance order: no later input can re-enter)",
						})
					}
				}
				break
			}
			lastWindowTT = dcum + ttCum
		} else {
			if s <= -(events[yi].TT + d1[yi] + tt1[yi] + refD1) {
				if ex != nil {
					ex.TT = append(ex.TT, AbsorbStep{
						Input: yi, Pin: events[yi].Pin, S: s, Window: events[yi].TT + d1[yi] + tt1[yi] + refD1,
						Pruned: true, Reason: "lapsed: ramp, solo response and output transition complete before the reference acts",
					})
				}
				continue
			}
			lastWindowTT = events[yi].TT + d1[yi] + tt1[yi] + refD1
		}
		sStar := s + refD1 - dcum
		dr, tr, err := be.Ratios(ref.Pin, events[yi].Pin, dir, ref.TT, events[yi].TT, sStar, refD1, refTT1)
		if err != nil {
			return nil, err
		}
		if ex != nil {
			ex.TT = append(ex.TT, AbsorbStep{
				Input: yi, Pin: events[yi].Pin, S: s, SStar: sStar, Window: lastWindowTT,
				X1: ref.TT / refD1, X2: events[yi].TT / refD1, X3: sStar / refD1,
				DRatio: dr, TRatio: tr, CumBefore: ttCum,
			})
		}
		if tr > 0 {
			ttCum *= tr
		}
		// Track the delay evolution too: the TT window moves with it.
		if s < dcum {
			dcum += refD1 * (dr - 1)
			if dcum < 1e-15 {
				dcum = 1e-15
			}
		}
		if ex != nil {
			ex.TT[len(ex.TT)-1].CumAfter = ttCum
		}
		usedTT++
		lastSepTT = s
	}

	// Correction (Section 4): full magnitude when the last in-window input
	// is coincident-or-earlier (s ≤ 0), fading linearly to zero at the
	// window edge. Only multi-input compositions are corrected; each pass
	// uses its own window.
	// away converts a separation into "distance from coincidence in the
	// fading direction": late arrivals for first-cause networks, early
	// arrivals for last-cause (where every non-dominant input is early).
	away := func(sep float64) float64 {
		if caus == macromodel.LastCause {
			sep = -sep
		}
		if sep < 0 {
			return 0
		}
		return sep
	}
	corr := 0.0
	if !c.DisableCorrection {
		cc := c.Model.Correction(dir)
		if usedDelay >= 2 {
			factor := 1 - away(lastSep)/lastWindow
			if factor < 0 {
				factor = 0
			}
			corr = cc.Delay * factor
			cum += corr
			if cum < 1e-15 {
				cum = 1e-15
			}
			if ex != nil {
				ex.DelayCorrection = CorrectionTrace{Raw: cc.Delay, Factor: factor, Applied: corr}
			}
		}
		if usedTT >= 2 {
			factor := 1 - away(lastSepTT)/lastWindowTT
			if factor < 0 {
				factor = 0
			}
			ttCum += cc.OutTT * factor
			if ttCum < 1e-15 {
				ttCum = 1e-15
			}
			if ex != nil {
				ex.TTCorrection = CorrectionTrace{Raw: cc.OutTT, Factor: factor, Applied: cc.OutTT * factor}
			}
		}
	}

	return &Result{
		Delay:             cum,
		OutputCross:       ref.Cross + cum,
		OutTT:             ttCum,
		Dominant:          ref.Pin,
		Order:             order,
		UsedDelay:         usedDelay,
		UsedTT:            usedTT,
		CorrectionApplied: corr,
	}, nil
}

// tieEps is the relative band within which two dominance keys are treated
// as equal, so the original (pin) order decides. Without it, a tie is
// decided by ULP-level rounding — and rounding is not invariant under time
// translation, so the same stimulus shifted by Δt could flip the dominance
// order and jump the result across the algorithm's inter-reference
// discontinuity. Exact ties are not measure-zero in practice: reconvergent
// fanout through identical cell types makes the upstream delay difference
// cancel the downstream solo-delay difference exactly. The band (~1e-22 s
// at circuit scale) sits many orders above accumulated rounding noise and
// many below any physical delay, so it only captures genuine ties.
const tieEps = 1e-11

// sortByKey stably sorts order by key[order[i]] — descending when desc is
// set. Keys within tieEps (relative to the larger magnitude) compare equal
// and keep their original relative order. A stable insertion sort: the
// event sets it orders are gate fan-ins (a handful of entries), and unlike
// sort.SliceStable it allocates nothing.
func sortByKey(order []int, key []float64, desc bool) {
	precedes := func(a, b float64) bool {
		if math.Abs(a-b) <= tieEps*math.Max(math.Abs(a), math.Abs(b)) {
			return false
		}
		if desc {
			return a > b
		}
		return a < b
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && precedes(key[order[j]], key[order[j-1]]); j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
}

// SingleDelay returns the single-input delay and output transition time for
// one pin from the characterized model.
func (c *Calculator) SingleDelay(pin int, dir waveform.Direction, tau float64) (delay, outTT float64, err error) {
	s := c.Model.Single(pin, dir)
	if s == nil {
		return 0, 0, fmt.Errorf("core: pin %d has no single-input model for %v inputs", pin, dir)
	}
	return s.DelayAt(tau), s.OutTTAt(tau), nil
}

// DelayWindow returns the proximity window within which a second input can
// still influence the delay caused by (pin, dir, tau): Δ(1).
func (c *Calculator) DelayWindow(pin int, dir waveform.Direction, tau float64) (float64, error) {
	d, _, err := c.SingleDelay(pin, dir, tau)
	return d, err
}

// TTWindow returns the proximity window for transition-time influence:
// Δ(1) + τ(1)_out.
func (c *Calculator) TTWindow(pin int, dir waveform.Direction, tau float64) (float64, error) {
	d, tt, err := c.SingleDelay(pin, dir, tau)
	return d + tt, err
}
