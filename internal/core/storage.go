package core

import "math"

// StorageOption identifies one of the macromodel storage strategies compared
// in the paper's Figure 4-2.
type StorageOption int

const (
	// FullModel stores n functions of 2n-1 arguments (equation 4.1).
	FullModel StorageOption = iota
	// PairMatrix stores n single-input models plus n(n-1) dual-input
	// models (option 2(a) in Figure 4-2).
	PairMatrix
	// PerReference stores n single-input plus n dual-input models — the
	// paper's observed sufficient set (2n models per quantity).
	PerReference
)

func (o StorageOption) String() string {
	switch o {
	case FullModel:
		return "full (n functions of 2n-1 args)"
	case PairMatrix:
		return "pair matrix (n single + n(n-1) dual)"
	case PerReference:
		return "per-reference (n single + n dual)"
	default:
		return "unknown"
	}
}

// StorageCost reports the table-entry count of one strategy for an n-input
// gate with p sample points per table axis, for ONE modeled quantity
// (delay or transition time; the paper doubles everything for both).
type StorageCost struct {
	Option  StorageOption
	Inputs  int
	Tables  int
	Entries float64 // float64: the full model overflows int64 quickly
}

// StorageComplexity evaluates the Figure 4-2 comparison: entry counts for
// the three strategies at fan-in n with p points per axis. Single-input
// models are 1-D tables; dual-input models are 3-D; the full model is one
// (2n-1)-D table per input.
func StorageComplexity(n, p int) []StorageCost {
	pf := float64(p)
	full := StorageCost{
		Option:  FullModel,
		Inputs:  n,
		Tables:  n,
		Entries: float64(n) * math.Pow(pf, float64(2*n-1)),
	}
	matrix := StorageCost{
		Option:  PairMatrix,
		Inputs:  n,
		Tables:  n + n*(n-1),
		Entries: float64(n)*pf + float64(n*(n-1))*math.Pow(pf, 3),
	}
	perRef := StorageCost{
		Option:  PerReference,
		Inputs:  n,
		Tables:  2 * n,
		Entries: float64(n)*pf + float64(n)*math.Pow(pf, 3),
	}
	return []StorageCost{full, matrix, perRef}
}
