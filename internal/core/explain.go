package core

import (
	"fmt"
	"io"

	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// Explain is the per-gate decision trace of one Algorithm-ProximityDelay
// run (Paper §4, Figure 4-1): which input was chosen as dominant and why,
// each pairwise (y*, y_i) absorption with its normalized table coordinates,
// and which inputs the proximity window pruned. It exists for debugging
// delay-model reproductions — the numbers it reports are exactly the ones
// the evaluation used, captured in-line, not recomputed.
//
// Capture is opt-in (EvaluateExplain); the plain Evaluate path carries a
// nil *Explain and pays only dead nil-checks.
type Explain struct {
	// Dir is the common input transition direction.
	Dir waveform.Direction
	// Causation names the conduction topology that picked the dominance
	// rule: first-cause (parallel, earliest solo crossing dominates) or
	// last-cause (series, latest solo crossing dominates).
	Causation macromodel.Causation
	// NaiveOrdering is set when the ablation replaced dominance ordering
	// with arrival-time ordering.
	NaiveOrdering bool
	// Inputs describes every presented event with its solo (single-input)
	// response, indexed like the events slice handed to Evaluate.
	Inputs []ExplainInput
	// Order lists indices into Inputs in dominance order (Order[0] is the
	// dominant input).
	Order []int
	// Delay and TT trace the two absorption passes: Delay the delay loop
	// (window Δ(i-1)), TT the transition-time loop (window Δ(i-1)+τ(i-1)).
	// Each non-dominant input in dominance order appears exactly once per
	// pass, absorbed or pruned.
	Delay []AbsorbStep
	TT    []AbsorbStep
	// DelayCorrection and TTCorrection describe the Section-4 corrective
	// term of each pass.
	DelayCorrection CorrectionTrace
	TTCorrection    CorrectionTrace
}

// ExplainInput is one presented input event with its characterized solo
// response.
type ExplainInput struct {
	Pin   int
	Dir   waveform.Direction
	TT    float64 // input transition time
	Cross float64 // absolute input crossing time
	D1    float64 // solo delay Δ(1)
	TT1   float64 // solo output transition time τ(1)_out
	Solo  float64 // solo output crossing: Cross + D1 (the dominance key)
}

// AbsorbStep is one iteration of an absorption pass: either a pairwise
// (y*, y_i) macromodel application or a window prune.
type AbsorbStep struct {
	// Index into Explain.Inputs; Pin is the physical pin.
	Input int
	Pin   int
	// S is the separation from the dominant input's crossing
	// (events[yi].Cross − ref.Cross); SStar the equivalent-waveform
	// separation actually handed to the dual model (s + Δ(1) − Δ(i-1)).
	S     float64
	SStar float64
	// Window is the bound the paper's while-condition tested for this
	// input: Δ(i-1) for the first-cause delay pass, Δ(i-1)+τ(i-1) for the
	// transition-time pass, τ_i+Δ(1)_i+Δ(1) (lapse distance) for
	// last-cause.
	Window float64
	// Pruned is set when the window excluded the input; Reason says which
	// rule fired. A pruned step carries no table lookup.
	Pruned bool
	Reason string
	// X1, X2, X3 are the normalized dual-table coordinates the lookup
	// used: τ_ref/Δ(1), τ_i/Δ(1), s*/Δ(1).
	X1, X2, X3 float64
	// DRatio and TRatio are the looked-up Δ(2)/Δ(1) and τ(2)/τ(1).
	DRatio, TRatio float64
	// CumBefore and CumAfter are the pass's cumulative value (delay Δ(i)
	// for the delay pass, output transition time for the TT pass) around
	// this absorption.
	CumBefore, CumAfter float64
}

// CorrectionTrace describes the Section-4 step-input corrective term of one
// pass: Raw is the characterized full-magnitude correction, Factor the
// linear fade (1 at coincidence, 0 at the window edge), Applied what was
// actually added (0 when the pass combined a single input or the ablation
// disabled it).
type CorrectionTrace struct {
	Raw     float64
	Factor  float64
	Applied float64
}

// EvaluateExplain runs Algorithm ProximityDelay exactly as Evaluate does —
// bit-identical result, asserted by tests — while recording the decision
// trace. It is not on the analysis hot path: explain requests re-run the
// evaluation for the nets they ask about.
func (c *Calculator) EvaluateExplain(events []InputEvent) (*Result, *Explain, error) {
	ex := &Explain{}
	r, err := c.evaluate(events, ex)
	if err != nil {
		return nil, nil, err
	}
	return r, ex, nil
}

// Format renders the trace as an indented human-readable report (the
// cmd/sta -explain output).
func (ex *Explain) Format(w io.Writer) {
	fmt.Fprintf(w, "direction: %v inputs, causation: %v", ex.Dir, ex.Causation)
	if ex.NaiveOrdering {
		fmt.Fprintf(w, " (naive arrival ordering — ablation)")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "dominance order (index: pin, input cross, solo delay, solo crossing):\n")
	for rank, i := range ex.Order {
		in := ex.Inputs[i]
		tag := ""
		if rank == 0 {
			tag = "  <- dominant"
		}
		fmt.Fprintf(w, "  #%d: pin %d  cross=%.2fps  tt=%.2fps  d1=%.2fps  solo=%.2fps%s\n",
			rank, in.Pin, in.Cross*1e12, in.TT*1e12, in.D1*1e12, in.Solo*1e12, tag)
	}
	passes := []struct {
		name  string
		steps []AbsorbStep
		corr  CorrectionTrace
	}{
		{"delay pass (window \u0394(i-1))", ex.Delay, ex.DelayCorrection},
		{"transition-time pass (window \u0394(i-1)+\u03c4(i-1))", ex.TT, ex.TTCorrection},
	}
	for _, p := range passes {
		fmt.Fprintf(w, "%s:\n", p.name)
		for _, st := range p.steps {
			if st.Pruned {
				fmt.Fprintf(w, "  pin %d: PRUNED (%s)  s=%.2fps window=%.2fps\n",
					st.Pin, st.Reason, st.S*1e12, st.Window*1e12)
				continue
			}
			fmt.Fprintf(w, "  pin %d: absorb  s=%.2fps s*=%.2fps  (\u03c4i/\u0394,\u03c4j/\u0394,s*/\u0394)=(%.3f,%.3f,%.3f)  D2/D1=%.4f T2/T1=%.4f  cum %.2f->%.2fps\n",
				st.Pin, st.S*1e12, st.SStar*1e12, st.X1, st.X2, st.X3,
				st.DRatio, st.TRatio, st.CumBefore*1e12, st.CumAfter*1e12)
		}
		if p.corr.Applied != 0 {
			fmt.Fprintf(w, "  correction: raw=%.3fps x factor %.3f = %+.3fps\n",
				p.corr.Raw*1e12, p.corr.Factor, p.corr.Applied*1e12)
		} else {
			fmt.Fprintf(w, "  correction: none applied\n")
		}
	}
}
