package core_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/waveform"
)

// TestEvaluateRejectsNonFinite is the regression test for the NaN hole: the
// old guard `e.TT <= 0` let NaN through (NaN fails every ordered
// comparison), poisoning the dominance sort and the table interpolation.
// Every non-finite TT or Cross must be rejected with the pin named.
func TestEvaluateRejectsNonFinite(t *testing.T) {
	calc := core.NewCalculator(macromodel.SynthModel("nand", 2))
	good := core.InputEvent{Pin: 0, Dir: waveform.Falling, TT: 300e-12, Cross: 0}
	cases := []struct {
		name string
		ev   core.InputEvent
	}{
		{"NaN TT", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: math.NaN(), Cross: 10e-12}},
		{"+Inf TT", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: math.Inf(1), Cross: 10e-12}},
		{"-Inf TT", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: math.Inf(-1), Cross: 10e-12}},
		{"zero TT", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: 0, Cross: 10e-12}},
		{"negative TT", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: -1e-12, Cross: 10e-12}},
		{"NaN Cross", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: 300e-12, Cross: math.NaN()}},
		{"+Inf Cross", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: 300e-12, Cross: math.Inf(1)}},
		{"-Inf Cross", core.InputEvent{Pin: 1, Dir: waveform.Falling, TT: 300e-12, Cross: math.Inf(-1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := calc.Evaluate([]core.InputEvent{good, tc.ev})
			if err == nil {
				t.Fatalf("accepted %s event; result %+v", tc.name, res)
			}
			if !strings.Contains(err.Error(), "pin 1") {
				t.Errorf("error %q does not name the offending pin", err)
			}
		})
	}

	// The valid pair must still evaluate — the guards must not over-reject.
	res, err := calc.Evaluate([]core.InputEvent{
		good,
		{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: 15e-12},
	})
	if err != nil {
		t.Fatalf("valid proximity pair rejected: %v", err)
	}
	if math.IsNaN(res.Delay) || math.IsNaN(res.OutTT) {
		t.Fatalf("valid evaluation produced NaN: %+v", res)
	}
}
