package core_test

import (
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// TestAOI21PairProximity validates the proximity model on a complex gate:
// for each sensitizable pair of the AND-OR-INVERT gate, the dual-input model
// (sim-backed, the paper's §5 methodology) tracks golden two-input
// simulations across a separation sweep. This exercises causation resolution
// for mixed series/parallel topologies (pins a,b are AND-like; a,c are
// OR-like for rising inputs).
func TestAOI21PairProximity(t *testing.T) {
	if testing.Short() {
		t.Skip("complex-gate sweep in -short mode")
	}
	cell, err := cells.NewComplex(cells.AOI21(), 3, cells.DefaultProcess(), cells.DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Thresholds.Validate(); err != nil {
		t.Fatal(err)
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)

	cases := []struct {
		ref, other int
		dir        waveform.Direction
		want       macromodel.Causation
	}{
		{0, 1, waveform.Rising, macromodel.LastCause},   // a,b series pull-down
		{0, 1, waveform.Falling, macromodel.FirstCause}, // a,b parallel pull-up
		{0, 2, waveform.Rising, macromodel.FirstCause},  // a,c parallel branches
		{0, 2, waveform.Falling, macromodel.LastCause},
	}
	taus := []float64{100e-12, 300e-12, 800e-12}
	for _, tc := range cases {
		pins := []int{tc.ref, tc.other}
		levels, err := cell.SensitizeFor(pins)
		if err != nil {
			t.Fatalf("sensitize %v: %v", pins, err)
		}
		// Per-pair model: singles for both pins plus the paper's algorithm.
		s1, err := sim.CharacterizeSingle(tc.ref, tc.dir, taus)
		if err != nil {
			t.Fatalf("single ref %v: %v", tc, err)
		}
		s2, err := sim.CharacterizeSingle(tc.other, tc.dir, taus)
		if err != nil {
			t.Fatalf("single other %v: %v", tc, err)
		}
		model := &macromodel.GateModel{
			Kind:      cell.Kind.String(),
			NumInputs: 3,
			Th:        fam.Thresholds,
			Load:      cell.Load(),
			Singles:   []*macromodel.SingleInputModel{s1, s2},
		}
		kind := cell.SubsetCausation(pins, levels, tc.dir == waveform.Rising)
		var caus macromodel.Causation
		switch kind {
		case cells.FirstCauseSubset:
			caus = macromodel.FirstCause
		case cells.LastCauseSubset:
			caus = macromodel.LastCause
		default:
			t.Fatalf("pair %v %v: mixed causation", pins, tc.dir)
		}
		if caus != tc.want {
			t.Errorf("pair %v %v: causation %v, want %v", pins, tc.dir, caus, tc.want)
		}
		model.SetCausation(tc.dir, caus)

		// Characterize the pair's dual table so the evaluation is a real
		// prediction (a sim backend would be circular for two inputs).
		grid := macromodel.CoarseDualGrid()
		dual, err := sim.CharacterizeDual(tc.ref, tc.other, tc.dir, s1, s2, grid)
		if err != nil {
			t.Fatalf("dual %v: %v", tc, err)
		}
		// Either pin can end up dominant depending on the separation, so
		// characterize both reference choices.
		dualRev, err := sim.CharacterizeDual(tc.other, tc.ref, tc.dir, s2, s1, grid)
		if err != nil {
			t.Fatalf("dual rev %v: %v", tc, err)
		}
		model.Duals = []*macromodel.DualInputModel{dual, dualRev}
		calc := core.NewCalculator(model)
		worst := 0.0
		for _, sep := range []float64{-150e-12, 0, 120e-12} {
			res, err := calc.Evaluate([]core.InputEvent{
				{Pin: tc.ref, Dir: tc.dir, TT: 400e-12, Cross: 0},
				{Pin: tc.other, Dir: tc.dir, TT: 200e-12, Cross: sep},
			})
			if err != nil {
				t.Fatalf("evaluate %v sep=%g: %v", tc, sep, err)
			}
			run, err := sim.Run([]macromodel.PinStim{
				{Pin: tc.ref, Dir: tc.dir, TT: 400e-12, Cross: 0},
				{Pin: tc.other, Dir: tc.dir, TT: 200e-12, Cross: sep},
			})
			if err != nil {
				t.Fatalf("golden %v sep=%g: %v", tc, sep, err)
			}
			refIdx := 0
			if res.Dominant == tc.other {
				refIdx = 1
			}
			actual, err := run.DelayFrom(refIdx)
			if err != nil {
				t.Fatalf("measure %v sep=%g: %v", tc, sep, err)
			}
			rel := math.Abs(res.Delay-actual) / actual
			if rel > worst {
				worst = rel
			}
			if rel > 0.12 {
				t.Errorf("pair (%d,%d) %v sep=%.0fps: model %.1fps vs golden %.1fps (%.1f%%)",
					tc.ref, tc.other, tc.dir, sep*1e12, res.Delay*1e12, actual*1e12, rel*100)
			}
		}
		t.Logf("AOI21 pair (%c,%c) %v [%v]: worst delay error %.1f%%",
			'a'+tc.ref, 'a'+tc.other, tc.dir, caus, worst*100)
	}
}
