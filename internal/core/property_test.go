package core_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/waveform"
)

// randomEvents draws a random same-direction configuration in the paper's
// experimental ranges.
func randomEvents(r *rand.Rand, pins int) []core.InputEvent {
	dir := waveform.Falling
	if r.Intn(2) == 0 {
		dir = waveform.Rising
	}
	n := 1 + r.Intn(pins)
	perm := r.Perm(pins)[:n]
	evs := make([]core.InputEvent, n)
	for i, p := range perm {
		evs[i] = core.InputEvent{
			Pin:   p,
			Dir:   dir,
			TT:    50e-12 + r.Float64()*1950e-12,
			Cross: -500e-12 + r.Float64()*1000e-12,
		}
	}
	return evs
}

// TestDelayAlwaysPositiveProperty: the Section-2 threshold policy guarantees
// the model never produces a non-positive delay or transition time, for any
// combination of transition times and separations.
func TestDelayAlwaysPositiveProperty(t *testing.T) {
	r := getRig(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := randomEvents(rng, 3)
		res, err := r.calc.Evaluate(evs)
		if err != nil {
			t.Logf("evaluate error: %v", err)
			return false
		}
		if res.Delay <= 0 || res.OutTT <= 0 {
			t.Logf("non-positive result %+v for %+v", res, evs)
			return false
		}
		if math.IsNaN(res.Delay) || math.IsNaN(res.OutTT) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestEventOrderInvarianceProperty: the evaluation must not depend on the
// order events are listed (dominance ordering is internal).
func TestEventOrderInvarianceProperty(t *testing.T) {
	r := getRig(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := randomEvents(rng, 3)
		res1, err := r.calc.Evaluate(evs)
		if err != nil {
			return false
		}
		// Shuffle.
		shuffled := append([]core.InputEvent(nil), evs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		res2, err := r.calc.Evaluate(shuffled)
		if err != nil {
			return false
		}
		return res1.Dominant == res2.Dominant &&
			math.Abs(res1.Delay-res2.Delay) < 1e-18 &&
			math.Abs(res1.OutTT-res2.OutTT) < 1e-18 &&
			math.Abs(res1.OutputCross-res2.OutputCross) < 1e-18
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTimeTranslationInvarianceProperty: shifting every event by the same
// offset shifts the output crossing by that offset and leaves delay and
// transition time unchanged.
func TestTimeTranslationInvarianceProperty(t *testing.T) {
	r := getRig(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		evs := randomEvents(rng, 3)
		shift := -2e-9 + rng.Float64()*4e-9
		res1, err := r.calc.Evaluate(evs)
		if err != nil {
			return false
		}
		moved := make([]core.InputEvent, len(evs))
		for i, e := range evs {
			e.Cross += shift
			moved[i] = e
		}
		res2, err := r.calc.Evaluate(moved)
		if err != nil {
			return false
		}
		return math.Abs(res1.Delay-res2.Delay) < 1e-15 &&
			math.Abs(res1.OutTT-res2.OutTT) < 1e-15 &&
			math.Abs((res2.OutputCross-res1.OutputCross)-shift) < 1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFarInputMonotoneIrrelevanceProperty: adding an input far beyond the
// transition-time proximity window never changes the result.
func TestFarInputMonotoneIrrelevanceProperty(t *testing.T) {
	r := getRig(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := waveform.Falling
		tau := 100e-12 + rng.Float64()*1.5e-9
		base := []core.InputEvent{{Pin: 0, Dir: dir, TT: tau, Cross: 0}}
		res1, err := r.calc.Evaluate(base)
		if err != nil {
			return false
		}
		// A second input far outside the window: for first-cause (falling
		// NAND inputs) that means far LATER than the whole TT window.
		far := res1.Delay + res1.OutTT + 2e-9 + rng.Float64()*2e-9
		with := append(base, core.InputEvent{Pin: 1, Dir: dir, TT: 200e-12, Cross: far})
		res2, err := r.calc.Evaluate(with)
		if err != nil {
			return false
		}
		return math.Abs(res1.Delay-res2.Delay) < 1e-18 && math.Abs(res1.OutTT-res2.OutTT) < 1e-18
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
