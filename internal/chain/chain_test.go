package chain_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

func TestBuildValidation(t *testing.T) {
	proc := cells.DefaultProcess()
	if _, err := chain.Build(proc, nil); err == nil {
		t.Error("empty chain accepted")
	}
	geom := cells.DefaultGeometry()
	dup := []chain.GateSpec{
		{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n"},
		{Name: "g2", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n"},
	}
	if _, err := chain.Build(proc, dup); err == nil {
		t.Error("doubly driven net accepted")
	}
	anon := []chain.GateSpec{{Kind: cells.Nand, Geom: geom, Inputs: []string{"a"}, Output: ""}}
	if _, err := chain.Build(proc, anon); err == nil {
		t.Error("anonymous gate accepted")
	}
}

func TestPrimaryInputDetection(t *testing.T) {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	nl, err := chain.Build(proc, []chain.GateSpec{
		{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n1"},
		{Name: "g2", Kind: cells.Nand, Geom: geom, Inputs: []string{"n1", "c"}, Output: "out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range []string{"a", "b", "c"} {
		if _, ok := nl.PrimaryInputs[pi]; !ok {
			t.Errorf("%s not detected as primary input", pi)
		}
	}
	if _, ok := nl.PrimaryInputs["n1"]; ok {
		t.Error("internal net n1 marked primary")
	}
	// 2 gates x 4 transistors... NAND2 has 4 transistors each.
	if got := len(nl.Ckt.MOSFETs); got != 8 {
		t.Errorf("composed circuit has %d transistors, want 8", got)
	}
}

// TestSingleGateChainMatchesCellHarness: a one-gate chain with the same
// output load reproduces the standalone cell measurement.
func TestSingleGateChainMatchesCellHarness(t *testing.T) {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()

	cell := cells.MustNew(cells.Nand, 2, proc, geom)
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	th := fam.Thresholds
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), th)
	wantDelay, wantTT, err := sim.RunPair(0, 1, waveform.Falling, 400e-12, 150e-12, 80e-12)
	if err != nil {
		t.Fatal(err)
	}

	nl, err := chain.Build(proc, []chain.GateSpec{
		{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "out",
			ExtraLoad: geom.CLoad},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nl.Run([]chain.Stimulus{
		{Net: "a", Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Net: "b", Dir: waveform.Falling, TT: 150e-12, Cross: 80e-12},
	}, th, spice.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := res.CrossTime("out", waveform.Rising)
	if err != nil {
		t.Fatal(err)
	}
	gotDelay := cross // input a crossed at t=0 in the unshifted frame
	if rel := math.Abs(gotDelay-wantDelay) / wantDelay; rel > 0.02 {
		t.Errorf("chain delay %.1fps vs cell harness %.1fps (%.1f%%)",
			gotDelay*1e12, wantDelay*1e12, rel*100)
	}
	gotTT, err := res.TransitionTime("out", waveform.Rising)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(gotTT-wantTT) / wantTT; rel > 0.03 {
		t.Errorf("chain TT %.1fps vs cell harness %.1fps", gotTT*1e12, wantTT*1e12)
	}
}

// TestFanoutLoadingSlowsDriver: a gate driving two fanout gates switches
// more slowly than one driving a single gate — the composed circuit carries
// real inter-stage loading.
func TestFanoutLoadingSlowsDriver(t *testing.T) {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	crossWith := func(fanout int) float64 {
		gates := []chain.GateSpec{
			{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n1"},
		}
		for i := 0; i < fanout; i++ {
			gates = append(gates, chain.GateSpec{
				Name: fmt.Sprintf("l%d", i), Kind: cells.Nand, Geom: geom,
				Inputs: []string{"n1", "en"}, Output: fmt.Sprintf("o%d", i), ExtraLoad: 50e-15,
			})
		}
		nl, err := chain.Build(proc, gates)
		if err != nil {
			t.Fatal(err)
		}
		th := waveform.Thresholds{Vil: 1.5, Vih: 3.5, Vdd: 5}
		res, err := nl.Run([]chain.Stimulus{
			{Net: "a", Dir: waveform.Falling, TT: 300e-12, Cross: 0},
		}, th, spice.DefaultOptions(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := res.CrossTime("n1", waveform.Rising)
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	one := crossWith(1)
	three := crossWith(3)
	if !(three > one) {
		t.Errorf("fanout-3 crossing (%.1fps) should be later than fanout-1 (%.1fps)",
			three*1e12, one*1e12)
	}
}

// TestRunValidation covers chain.Run error paths.
func TestRunValidation(t *testing.T) {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	nl, err := chain.Build(proc, []chain.GateSpec{
		{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := waveform.Thresholds{Vil: 1.5, Vih: 3.5, Vdd: 5}
	if _, err := nl.Run([]chain.Stimulus{{Net: "out", Dir: waveform.Falling, TT: 1e-10}}, th, spice.DefaultOptions(), 0); err == nil {
		t.Error("stimulating an internal net accepted")
	}
	if _, err := nl.Run([]chain.Stimulus{{Net: "a", Dir: waveform.Falling, TT: 0}}, th, spice.DefaultOptions(), 0); err == nil {
		t.Error("zero transition time accepted")
	}
	bad := waveform.Thresholds{Vil: 4, Vih: 1, Vdd: 5}
	if _, err := nl.Run([]chain.Stimulus{{Net: "a", Dir: waveform.Falling, TT: 1e-10}}, bad, spice.DefaultOptions(), 0); err == nil {
		t.Error("invalid thresholds accepted")
	}
	res, err := nl.Run([]chain.Stimulus{{Net: "a", Dir: waveform.Falling, TT: 3e-10}}, th, spice.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Trace("nope"); err == nil {
		t.Error("unknown net accepted by Trace")
	}
}

// TestCascadeSTAVsGolden is the end-to-end experiment: a two-stage NAND
// cascade with near-coincident primary-input transitions, timed by the
// proximity-aware STA against the full transistor-level simulation of the
// composed circuit. The proximity mode should land near the golden output
// crossing; the conventional single-switching-input mode misses the
// first-stage proximity speedup.
func TestCascadeSTAVsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("cascade experiment in -short mode")
	}
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	wire := 40e-15

	// Composed circuit: g1 = NAND2(a,b) -> n1; g2 = NAND2(n1,c) -> out.
	nl, err := chain.Build(proc, []chain.GateSpec{
		{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n1", ExtraLoad: wire},
		{Name: "g2", Kind: cells.Nand, Geom: geom, Inputs: []string{"n1", "c"}, Output: "out", ExtraLoad: 100e-15},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Library models: stage-1 cell loaded by g2's pin cap + wire; stage-2
	// cell by its output load.
	mkCalc := func(load float64) (*core.Calculator, waveform.Thresholds) {
		g := geom
		g.CLoad = load
		cell := cells.MustNew(cells.Nand, 2, proc, g)
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			t.Fatal(err)
		}
		sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		model, err := macromodel.CharacterizeGate(sim, macromodel.CoarseCharSpec())
		if err != nil {
			t.Fatal(err)
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			t.Fatal(err)
		}
		return calc, fam.Thresholds
	}
	calc1, th := mkCalc(cells.InputCapacitance(proc, geom) + wire)
	calc2, _ := mkCalc(100e-15)

	lib := sta.NewLibrary()
	lib.Add("nand2_stage1", calc1)
	lib.Add("nand2_stage2", calc2)
	c := sta.NewCircuit(lib)
	a := c.Input("a")
	b := c.Input("b")
	cin := c.Input("c")
	n1, err := c.AddGate("g1", "nand2_stage1", "n1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.AddGate("g2", "nand2_stage2", "out", n1, cin)
	if err != nil {
		t.Fatal(err)
	}

	// Stimulus: a and b fall 30 ps apart (strong proximity at g1); c stays
	// non-controlling high so g2 responds to n1 alone.
	const ttA, ttB = 400e-12, 250e-12
	const sep = 30e-12
	events := []sta.PIEvent{
		{Net: a, Dir: waveform.Falling, Time: 0, TT: ttA},
		{Net: b, Dir: waveform.Falling, Time: sep, TT: ttB},
	}
	proxRes, err := c.Analyze(events, sta.Proximity)
	if err != nil {
		t.Fatal(err)
	}
	convRes, err := c.Analyze(events, sta.Conventional)
	if err != nil {
		t.Fatal(err)
	}
	proxArr, ok := proxRes.Arrival(out, waveform.Falling)
	if !ok {
		t.Fatal("no proximity arrival at out")
	}
	convArr, ok := convRes.Arrival(out, waveform.Falling)
	if !ok {
		t.Fatal("no conventional arrival at out")
	}

	// Golden composed simulation.
	run, err := nl.Run([]chain.Stimulus{
		{Net: "a", Dir: waveform.Falling, TT: ttA, Cross: 0},
		{Net: "b", Dir: waveform.Falling, TT: ttB, Cross: sep},
	}, th, spice.DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := run.CrossTime("out", waveform.Falling)
	if err != nil {
		t.Fatal(err)
	}

	proxErr := math.Abs(proxArr.Time-golden) / golden
	convErr := math.Abs(convArr.Time-golden) / golden
	t.Logf("golden %.0fps | proximity STA %.0fps (%.1f%%) | conventional STA %.0fps (%.1f%%)",
		golden*1e12, proxArr.Time*1e12, proxErr*100, convArr.Time*1e12, convErr*100)
	if proxErr > 0.15 {
		t.Errorf("proximity STA off by %.1f%% from composed simulation", proxErr*100)
	}
	if convErr < proxErr {
		t.Logf("note: conventional STA happened to be closer on this configuration")
	}
}
