// Package chain composes several logic cells into ONE transistor-level
// circuit so that multi-stage timing can be simulated end-to-end. It is the
// golden reference for the proximity-aware static timing analyzer
// (internal/sta): the STA propagates (crossing time, transition time) pairs
// gate by gate through macromodels, while chain simulates the entire cascade
// with the circuit simulator, including the real loading of each stage by
// the next stage's gate capacitance.
package chain

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/circuit"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/waveform"
)

// GateSpec declares one gate instance in the cascade.
type GateSpec struct {
	Name   string
	Kind   cells.Kind
	Geom   cells.Geometry
	Inputs []string // net names; primary inputs are nets no gate drives
	Output string
	// ExtraLoad is an additional capacitance on the output net (wire load);
	// the gate capacitance of fanout stages is modeled automatically.
	ExtraLoad float64
}

// Netlist is the composed circuit.
type Netlist struct {
	Ckt   *circuit.Circuit
	Proc  cells.Process
	Gates []GateSpec
	// PrimaryInputs maps net name -> driven node for nets no gate drives.
	PrimaryInputs map[string]circuit.NodeID
	// Nets maps every net name to its node.
	Nets map[string]circuit.NodeID
	// driverKind maps an internal net to the kind of gate driving it (for
	// choosing measurement conventions).
	driverKind map[string]cells.Kind
}

// Build composes the gates into one circuit. Nets that appear only as gate
// inputs become primary inputs, initially held at the non-controlling level
// of the first gate that consumes them.
func Build(proc cells.Process, gates []GateSpec) (*Netlist, error) {
	if len(gates) == 0 {
		return nil, fmt.Errorf("chain: no gates")
	}
	ckt := circuit.New()
	vdd := ckt.DriveName("vdd", circuit.DC(proc.Vdd))

	nl := &Netlist{
		Ckt:           ckt,
		Proc:          proc,
		Gates:         append([]GateSpec(nil), gates...),
		PrimaryInputs: map[string]circuit.NodeID{},
		Nets:          map[string]circuit.NodeID{},
		driverKind:    map[string]cells.Kind{},
	}

	driven := map[string]string{} // net -> gate name
	for _, g := range gates {
		if g.Output == "" || g.Name == "" {
			return nil, fmt.Errorf("chain: gate needs a name and an output net")
		}
		if prev, ok := driven[g.Output]; ok {
			return nil, fmt.Errorf("chain: net %s driven by both %s and %s", g.Output, prev, g.Name)
		}
		driven[g.Output] = g.Name
		nl.driverKind[g.Output] = g.Kind
	}

	node := func(name string) circuit.NodeID {
		id := ckt.Node(name)
		nl.Nets[name] = id
		return id
	}

	for _, g := range gates {
		inputs := make([]circuit.NodeID, len(g.Inputs))
		for i, in := range g.Inputs {
			inputs[i] = node(in)
			if _, isDriven := driven[in]; !isDriven {
				if _, seen := nl.PrimaryInputs[in]; !seen {
					nl.PrimaryInputs[in] = inputs[i]
					// Park primary inputs at this gate's non-controlling
					// level until a stimulus is attached.
					level := proc.Vdd
					if g.Kind == cells.Nor {
						level = 0
					}
					ckt.Drive(inputs[i], circuit.DC(level))
				}
			}
		}
		out := node(g.Output)
		if err := cells.Instantiate(ckt, g.Kind, proc, g.Geom, inputs, out, vdd, g.Name+"_"); err != nil {
			return nil, fmt.Errorf("chain: gate %s: %w", g.Name, err)
		}
		if g.ExtraLoad > 0 {
			ckt.AddCapacitor(g.Name+"_cw", out, circuit.Ground, g.ExtraLoad)
		}
	}
	return nl, nil
}

// Stimulus is one primary-input transition (same conventions as
// macromodel.PinStim: Cross is the measurement-level crossing time).
type Stimulus struct {
	Net   string
	Dir   waveform.Direction
	TT    float64
	Cross float64
}

// Result carries the composed-transient outcome.
type Result struct {
	Tran  *spice.TranResult
	Th    waveform.Thresholds
	PWLs  map[string]*waveform.PWL
	Shift float64
	nl    *Netlist
}

// Run drives the primary inputs and simulates the whole cascade. th supplies
// the measurement levels used to place the stimuli (typically the threshold
// set of the first-stage gate model). Undriven primary inputs stay parked.
func (nl *Netlist) Run(stims []Stimulus, th waveform.Thresholds, opt spice.Options, settle float64) (*Result, error) {
	if settle <= 0 {
		settle = 5e-9
	}
	if err := th.Validate(); err != nil {
		return nil, err
	}
	// Reset all primary inputs to their parked levels... they keep their
	// current drives; stimulated nets get PWLs below.
	const margin = 0.3e-9
	minStart := 0.0
	type placed struct {
		s     Stimulus
		start float64
	}
	pl := make([]placed, len(stims))
	for i, s := range stims {
		if _, ok := nl.PrimaryInputs[s.Net]; !ok {
			return nil, fmt.Errorf("chain: %s is not a primary input", s.Net)
		}
		if s.TT <= 0 {
			return nil, fmt.Errorf("chain: non-positive transition time on %s", s.Net)
		}
		frac := th.Vil / th.Vdd
		if s.Dir == waveform.Falling {
			frac = (th.Vdd - th.Vih) / th.Vdd
		}
		start := s.Cross - s.TT*frac
		if start < minStart {
			minStart = start
		}
		pl[i] = placed{s: s, start: start}
	}
	shift := margin - minStart

	pwls := map[string]*waveform.PWL{}
	var bps []*waveform.PWL
	maxEnd := 0.0
	for _, p := range pl {
		var w *waveform.PWL
		if p.s.Dir == waveform.Rising {
			w = waveform.Ramp(p.start+shift, p.s.TT, 0, nl.Proc.Vdd)
		} else {
			w = waveform.Ramp(p.start+shift, p.s.TT, nl.Proc.Vdd, 0)
		}
		pwls[p.s.Net] = w
		bps = append(bps, w)
		nl.Ckt.Drive(nl.PrimaryInputs[p.s.Net], w.Eval)
		if e := p.start + shift + p.s.TT; e > maxEnd {
			maxEnd = e
		}
	}

	eng, err := spice.New(nl.Ckt, opt)
	if err != nil {
		return nil, err
	}
	res, err := eng.Transient(spice.TranSpec{Stop: maxEnd + settle, Breakpoints: waveform.Breakpoints(bps...)})
	if err != nil {
		return nil, err
	}
	return &Result{Tran: res, Th: th, PWLs: pwls, Shift: shift, nl: nl}, nil
}

// Trace returns the simulated waveform of a net.
func (r *Result) Trace(net string) (*waveform.Trace, error) {
	id, ok := r.nl.Nets[net]
	if !ok {
		return nil, fmt.Errorf("chain: unknown net %s", net)
	}
	return r.Tran.Trace(id), nil
}

// CrossTime measures when a net completes a transition in direction d (last
// crossing of the measurement level), in the original (unshifted) frame.
func (r *Result) CrossTime(net string, d waveform.Direction) (float64, error) {
	tr, err := r.Trace(net)
	if err != nil {
		return 0, err
	}
	t, err := r.Th.OutputCross(tr, d)
	if err != nil {
		return 0, fmt.Errorf("chain: net %s: %w", net, err)
	}
	return t - r.Shift, nil
}

// TransitionTime measures a net's transition time in direction d.
func (r *Result) TransitionTime(net string, d waveform.Direction) (float64, error) {
	tr, err := r.Trace(net)
	if err != nil {
		return 0, err
	}
	return r.Th.TransitionTime(tr, d)
}

// InputGateSim builds a single-cell measurement harness with the same
// geometry as the named gate, used when characterizing library models that
// should match this netlist's stages.
func (nl *Netlist) InputGateSim(gate GateSpec, th waveform.Thresholds, opt spice.Options) (*macromodel.GateSim, error) {
	cell, err := cells.New(gate.Kind, len(gate.Inputs), nl.Proc, gate.Geom)
	if err != nil {
		return nil, err
	}
	return macromodel.NewGateSim(cell, opt, th), nil
}
