package circuit

import (
	"testing"

	"repro/internal/device"
)

func TestNodeCreationAndDedup(t *testing.T) {
	c := New()
	a := c.Node("a")
	if a2 := c.Node("a"); a2 != a {
		t.Errorf("node a created twice: %d vs %d", a, a2)
	}
	if g := c.Node("0"); g != Ground {
		t.Errorf("\"0\" = %d, want ground", g)
	}
	if g := c.Node("gnd"); g != Ground {
		t.Errorf("\"gnd\" = %d, want ground", g)
	}
	if c.NodeName(a) != "a" {
		t.Errorf("NodeName = %q", c.NodeName(a))
	}
	if c.NumNodes() != 2 { // ground + a
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
}

func TestDriveAndUnknowns(t *testing.T) {
	c := New()
	in := c.DriveName("in", DC(5))
	out := c.Node("out")
	mid := c.Node("mid")
	if !c.IsDriven(in) || c.IsDriven(out) {
		t.Error("drive bookkeeping wrong")
	}
	if got := c.DriveValue(in, 0); got != 5 {
		t.Errorf("DriveValue = %g", got)
	}
	unk := c.Unknowns()
	if len(unk) != 2 || unk[0] != out || unk[1] != mid {
		t.Errorf("Unknowns = %v, want [out mid]", unk)
	}
	c.Undrive(in)
	if c.IsDriven(in) {
		t.Error("Undrive failed")
	}
	if len(c.Unknowns()) != 3 {
		t.Error("undriven node missing from unknowns")
	}
}

func TestDriveGroundPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Error("driving ground should panic")
		}
	}()
	c.Drive(Ground, DC(1))
}

func TestDriveValueOnUndrivenPanics(t *testing.T) {
	c := New()
	n := c.Node("x")
	defer func() {
		if recover() == nil {
			t.Error("DriveValue on undriven node should panic")
		}
	}()
	c.DriveValue(n, 0)
}

func TestDriveFuncOfAndTimeDependence(t *testing.T) {
	c := New()
	n := c.DriveName("in", func(tt float64) float64 { return tt * 2 })
	if got := c.DriveValue(n, 3); got != 6 {
		t.Errorf("time-dependent drive = %g", got)
	}
	f := c.DriveFuncOf(n)
	if f == nil || f(1) != 2 {
		t.Error("DriveFuncOf broken")
	}
	if c.DriveFuncOf(c.Node("other")) != nil {
		t.Error("DriveFuncOf on undriven node should be nil")
	}
}

func TestAddDevicesAndValidate(t *testing.T) {
	c := New()
	vdd := c.DriveName("vdd", DC(5))
	in := c.DriveName("in", DC(0))
	out := c.Node("out")
	m := device.MOSFET{Name: "mn", Type: device.NMOS, W: 1e-6, L: 1e-6,
		Model: device.Params{Vt0: 0.8, KP: 60e-6}}
	c.AddMOSFET(m, out, in, Ground, Ground)
	mp := m
	mp.Name, mp.Type, mp.Model.Vt0 = "mp", device.PMOS, -0.9
	c.AddMOSFET(mp, out, in, vdd, vdd)
	c.AddCapacitor("cl", out, Ground, 1e-13)
	c.AddResistor("r", out, Ground, 1e6)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	if len(c.MOSFETs) != 2 || len(c.Capacitors) != 1 || len(c.Resistors) != 1 {
		t.Error("device bookkeeping wrong")
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	c := New()
	m := device.MOSFET{Name: "bad", Type: device.NMOS, W: 0, L: 1e-6}
	c.AddMOSFET(m, Ground, Ground, Ground, Ground)
	if err := c.Validate(); err == nil {
		t.Error("zero-width MOSFET accepted")
	}
}

func TestNegativeComponentsPanic(t *testing.T) {
	c := New()
	for _, f := range []func(){
		func() { c.AddCapacitor("c", Ground, Ground, -1) },
		func() { c.AddResistor("r", Ground, Ground, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid component accepted")
				}
			}()
			f()
		}()
	}
}

func TestDrivenNodesSorted(t *testing.T) {
	c := New()
	c.Node("a")
	z := c.DriveName("z", DC(1))
	b := c.DriveName("b", DC(2))
	dn := c.DrivenNodes()
	if len(dn) != 2 || dn[0] != z || dn[1] != b {
		t.Errorf("DrivenNodes = %v, want sorted by id [%d %d]", dn, z, b)
	}
}
