// Package circuit represents transistor-level netlists for the simulator in
// internal/spice.
//
// A circuit is a set of named nodes connected by devices. Node 0 is always
// ground. A node may be *driven*, meaning its voltage is imposed by an ideal
// source as a function of time — gate input pins are driven nodes, matching
// the paper's assumption of piecewise-linear ideal input waveforms. All other
// non-ground nodes are *unknowns* solved by nodal analysis.
package circuit

import (
	"fmt"
	"sort"

	"repro/internal/device"
)

// NodeID identifies a node within one Circuit. Ground is always 0.
type NodeID int

// Ground is the reference node; its voltage is identically zero.
const Ground NodeID = 0

// DriveFunc gives the voltage of a driven node as a function of time in
// seconds. For DC analyses it is evaluated at the analysis time (default 0).
type DriveFunc func(t float64) float64

// DC returns a DriveFunc pinned at a constant voltage.
func DC(v float64) DriveFunc { return func(float64) float64 { return v } }

// MOSFETInst is a transistor instance wired into the circuit.
type MOSFETInst struct {
	device.MOSFET
	D, G, S, B NodeID
}

// Capacitor is a linear two-terminal capacitor.
type Capacitor struct {
	Name string
	A, B NodeID
	C    float64 // farads
}

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	Name string
	A, B NodeID
	R    float64 // ohms
}

// Circuit is a mutable netlist.
type Circuit struct {
	names  []string
	byName map[string]NodeID
	drives map[NodeID]DriveFunc

	MOSFETs    []*MOSFETInst
	Capacitors []*Capacitor
	Resistors  []*Resistor
}

// New returns an empty circuit containing only the ground node, which is
// reachable under the names "0" and "gnd".
func New() *Circuit {
	c := &Circuit{
		names:  []string{"0"},
		byName: map[string]NodeID{"0": Ground, "gnd": Ground},
		drives: map[NodeID]DriveFunc{},
	}
	return c
}

// Node returns the NodeID for name, creating the node if necessary.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	id := NodeID(len(c.names))
	c.names = append(c.names, name)
	c.byName[name] = id
	return id
}

// NodeName returns the canonical name of a node.
func (c *Circuit) NodeName(id NodeID) string {
	if int(id) < 0 || int(id) >= len(c.names) {
		return fmt.Sprintf("node#%d", int(id))
	}
	return c.names[id]
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// Drive marks a node as driven by an ideal voltage source.
func (c *Circuit) Drive(id NodeID, f DriveFunc) {
	if id == Ground {
		panic("circuit: cannot drive ground")
	}
	c.drives[id] = f
}

// DriveName is Drive keyed by node name (creating the node if needed).
func (c *Circuit) DriveName(name string, f DriveFunc) NodeID {
	id := c.Node(name)
	c.Drive(id, f)
	return id
}

// DriveFuncOf returns the source attached to a driven node (nil if none).
func (c *Circuit) DriveFuncOf(id NodeID) DriveFunc { return c.drives[id] }

// Undrive removes the source on a node, returning it to the unknown set.
func (c *Circuit) Undrive(id NodeID) { delete(c.drives, id) }

// IsDriven reports whether the node voltage is imposed by a source.
func (c *Circuit) IsDriven(id NodeID) bool {
	_, ok := c.drives[id]
	return ok
}

// DriveValue evaluates the source on a driven node at time t.
// It panics if the node is not driven.
func (c *Circuit) DriveValue(id NodeID, t float64) float64 {
	f, ok := c.drives[id]
	if !ok {
		panic(fmt.Sprintf("circuit: node %s is not driven", c.NodeName(id)))
	}
	return f(t)
}

// DrivenNodes returns the driven node IDs in ascending order.
func (c *Circuit) DrivenNodes() []NodeID {
	out := make([]NodeID, 0, len(c.drives))
	for id := range c.drives {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Unknowns returns the non-ground, non-driven node IDs in ascending order.
// These are the variables of the nodal-analysis system.
func (c *Circuit) Unknowns() []NodeID {
	out := make([]NodeID, 0, len(c.names))
	for i := 1; i < len(c.names); i++ {
		id := NodeID(i)
		if !c.IsDriven(id) {
			out = append(out, id)
		}
	}
	return out
}

// AddMOSFET wires a transistor between the given nodes and returns it.
func (c *Circuit) AddMOSFET(m device.MOSFET, d, g, s, b NodeID) *MOSFETInst {
	inst := &MOSFETInst{MOSFET: m, D: d, G: g, S: s, B: b}
	c.MOSFETs = append(c.MOSFETs, inst)
	return inst
}

// AddCapacitor adds a linear capacitor between nodes a and b.
func (c *Circuit) AddCapacitor(name string, a, b NodeID, farads float64) *Capacitor {
	if farads < 0 {
		panic("circuit: negative capacitance")
	}
	cap := &Capacitor{Name: name, A: a, B: b, C: farads}
	c.Capacitors = append(c.Capacitors, cap)
	return cap
}

// AddResistor adds a linear resistor between nodes a and b.
func (c *Circuit) AddResistor(name string, a, b NodeID, ohms float64) *Resistor {
	if ohms <= 0 {
		panic("circuit: resistance must be positive")
	}
	r := &Resistor{Name: name, A: a, B: b, R: ohms}
	c.Resistors = append(c.Resistors, r)
	return r
}

// Validate performs basic sanity checks and returns a descriptive error for
// malformed netlists (dangling device terminals, non-positive geometry).
func (c *Circuit) Validate() error {
	check := func(id NodeID, what string) error {
		if int(id) < 0 || int(id) >= len(c.names) {
			return fmt.Errorf("circuit: %s references undefined node %d", what, int(id))
		}
		return nil
	}
	for _, m := range c.MOSFETs {
		for _, n := range []NodeID{m.D, m.G, m.S, m.B} {
			if err := check(n, "mosfet "+m.Name); err != nil {
				return err
			}
		}
		if m.W <= 0 || m.L <= 0 {
			return fmt.Errorf("circuit: mosfet %s has non-positive geometry W=%g L=%g", m.Name, m.W, m.L)
		}
	}
	for _, cp := range c.Capacitors {
		if err := check(cp.A, "capacitor "+cp.Name); err != nil {
			return err
		}
		if err := check(cp.B, "capacitor "+cp.Name); err != nil {
			return err
		}
	}
	for _, r := range c.Resistors {
		if err := check(r.A, "resistor "+r.Name); err != nil {
			return err
		}
		if err := check(r.B, "resistor "+r.Name); err != nil {
			return err
		}
	}
	return nil
}
