// Package waveform provides the signal representations and measurement
// primitives used throughout the proximity-delay model: piecewise-linear
// (PWL) stimulus waveforms, sampled simulation traces, threshold-crossing
// searches, and the paper's delay/transition-time/separation measurement
// conventions (rising signals timed at Vil, falling signals at Vih).
package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Direction labels the sense of a signal transition.
type Direction int

const (
	Rising Direction = iota
	Falling
)

func (d Direction) String() string {
	if d == Rising {
		return "rising"
	}
	return "falling"
}

// Opposite returns the other direction.
func (d Direction) Opposite() Direction {
	if d == Rising {
		return Falling
	}
	return Rising
}

// Waveform is anything that can be evaluated as a voltage versus time.
type Waveform interface {
	Eval(t float64) float64
}

// Point is one breakpoint of a PWL waveform.
type Point struct {
	T float64 // seconds
	V float64 // volts
}

// PWL is a piecewise-linear waveform, the stimulus format used by the paper
// ("piecewise-linear inputs were used" — Section 5). Outside the breakpoint
// range the waveform holds its first/last value.
type PWL struct {
	pts []Point
}

// NewPWL builds a PWL waveform from breakpoints, which must be in strictly
// increasing time order.
func NewPWL(pts ...Point) (*PWL, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("waveform: PWL needs at least one point")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("waveform: PWL breakpoints must strictly increase in time (point %d: %g after %g)",
				i, pts[i].T, pts[i-1].T)
		}
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &PWL{pts: cp}, nil
}

// MustPWL is NewPWL that panics on error; for use with literal breakpoints.
func MustPWL(pts ...Point) *PWL {
	p, err := NewPWL(pts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Ramp returns a single full-swing linear ramp from v0 to v1 starting at t0
// with ramp duration tt (> 0). This is the stimulus the paper calls an input
// with "transition time" tt.
func Ramp(t0, tt, v0, v1 float64) *PWL {
	if tt <= 0 {
		panic("waveform: ramp duration must be positive")
	}
	return MustPWL(Point{T: t0, V: v0}, Point{T: t0 + tt, V: v1})
}

// RisingRamp returns a 0 -> vdd ramp starting at t0 with duration tt.
func RisingRamp(t0, tt, vdd float64) *PWL { return Ramp(t0, tt, 0, vdd) }

// FallingRamp returns a vdd -> 0 ramp starting at t0 with duration tt.
func FallingRamp(t0, tt, vdd float64) *PWL { return Ramp(t0, tt, vdd, 0) }

// Pulse returns a waveform that goes v0 -> v1 at t0 (rise time tr) and back
// v1 -> v0 at t0+width (fall time tf). Width is measured between the starts
// of the two edges and must exceed tr.
func Pulse(t0, tr, width, tf, v0, v1 float64) *PWL {
	if width <= tr {
		panic("waveform: pulse width must exceed leading edge duration")
	}
	return MustPWL(
		Point{T: t0, V: v0},
		Point{T: t0 + tr, V: v1},
		Point{T: t0 + width, V: v1},
		Point{T: t0 + width + tf, V: v0},
	)
}

// Eval returns the waveform value at time t.
func (p *PWL) Eval(t float64) float64 {
	pts := p.pts
	if t <= pts[0].T {
		return pts[0].V
	}
	last := pts[len(pts)-1]
	if t >= last.T {
		return last.V
	}
	// Binary search for the segment containing t.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t })
	a, b := pts[i-1], pts[i]
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// Points returns a copy of the breakpoints.
func (p *PWL) Points() []Point {
	cp := make([]Point, len(p.pts))
	copy(cp, p.pts)
	return cp
}

// Start and End return the time extent of the breakpoints.
func (p *PWL) Start() float64 { return p.pts[0].T }
func (p *PWL) End() float64   { return p.pts[len(p.pts)-1].T }

// Shift returns a copy of the waveform translated by dt (positive = later).
func (p *PWL) Shift(dt float64) *PWL {
	pts := make([]Point, len(p.pts))
	for i, q := range p.pts {
		pts[i] = Point{T: q.T + dt, V: q.V}
	}
	return &PWL{pts: pts}
}

// CrossTime returns the first time at or after 'after' when the PWL crosses
// 'level' in the given direction. The boolean result is false when no such
// crossing exists.
func (p *PWL) CrossTime(level float64, dir Direction, after float64) (float64, bool) {
	pts := p.pts
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if b.T < after {
			continue
		}
		t, ok := segmentCross(a, b, level, dir)
		if ok && t >= after {
			return t, true
		}
	}
	return 0, false
}

// segmentCross solves a single linear segment for a directional crossing.
func segmentCross(a, b Point, level float64, dir Direction) (float64, bool) {
	if a.V == b.V {
		return 0, false
	}
	if dir == Rising && !(a.V < level && b.V >= level) {
		return 0, false
	}
	if dir == Falling && !(a.V > level && b.V <= level) {
		return 0, false
	}
	frac := (level - a.V) / (b.V - a.V)
	return a.T + frac*(b.T-a.T), true
}

// Breakpoints merges the breakpoint times of several PWL waveforms, used by
// the transient engine to align time steps with stimulus corners.
func Breakpoints(ws ...*PWL) []float64 {
	var ts []float64
	for _, w := range ws {
		if w == nil {
			continue
		}
		for _, p := range w.pts {
			ts = append(ts, p.T)
		}
	}
	sort.Float64s(ts)
	// Deduplicate with a small tolerance.
	out := ts[:0]
	for _, t := range ts {
		if len(out) == 0 || t-out[len(out)-1] > 1e-18 {
			out = append(out, t)
		}
	}
	return out
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }
