package waveform

import (
	"math"
	"testing"
)

func mkTrace(t *testing.T, ts, vs []float64) *Trace {
	t.Helper()
	tr, err := NewTrace(ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewTrace(nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestTraceEvalInterpolates(t *testing.T) {
	tr := mkTrace(t, []float64{0, 1, 2}, []float64{0, 10, 0})
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 7.5}, {3, 0},
	}
	for _, c := range cases {
		if got := tr.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestTraceCrossAndLastCross(t *testing.T) {
	// Rises, dips (glitch), rises again.
	tr := mkTrace(t,
		[]float64{0, 1, 2, 3, 4},
		[]float64{0, 4, 1, 5, 5})
	first, ok := tr.CrossTime(2.5, Rising, -1)
	if !ok || math.Abs(first-0.625) > 1e-12 {
		t.Errorf("first rising cross = %g ok=%v, want 0.625", first, ok)
	}
	last, ok := tr.LastCrossTime(2.5, Rising)
	if !ok || math.Abs(last-2.375) > 1e-12 {
		t.Errorf("last rising cross = %g ok=%v, want 2.375", last, ok)
	}
	if _, ok := tr.CrossTime(9, Rising, -1); ok {
		t.Error("impossible crossing reported")
	}
}

func TestTraceMinMaxFinal(t *testing.T) {
	tr := mkTrace(t, []float64{0, 1, 2}, []float64{3, -2, 5})
	if v, at := tr.Min(); v != -2 || at != 1 {
		t.Errorf("Min = %g@%g", v, at)
	}
	if v, at := tr.Max(); v != 5 || at != 2 {
		t.Errorf("Max = %g@%g", v, at)
	}
	if tr.Final() != 5 {
		t.Errorf("Final = %g", tr.Final())
	}
}

func TestTraceResampleWindow(t *testing.T) {
	tr := mkTrace(t, []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	rs := tr.Resample([]float64{0.5, 1.5, 2.5})
	for i, want := range []float64{0.5, 1.5, 2.5} {
		if math.Abs(rs.V[i]-want) > 1e-12 {
			t.Errorf("resample[%d] = %g, want %g", i, rs.V[i], want)
		}
	}
	w := tr.Window(1, 2)
	if w.Len() != 2 || w.Start() != 1 || w.End() != 2 {
		t.Errorf("window = [%g,%g] len %d", w.Start(), w.End(), w.Len())
	}
}

func TestTraceSettles(t *testing.T) {
	tr := mkTrace(t,
		[]float64{0, 1, 2, 3, 4, 5},
		[]float64{0, 5, 5.01, 5.0, 5.0, 5.0})
	if !tr.Settles(5, 0.05, 2) {
		t.Error("trace should settle at 5 over the trailing 2s")
	}
	if tr.Settles(0, 0.05, 2) {
		t.Error("trace does not settle at 0")
	}
}

func TestThresholdsValidateAndLevels(t *testing.T) {
	th := Thresholds{Vil: 1.5, Vih: 3.5, Vdd: 5}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Thresholds{Vil: 3.5, Vih: 1.5, Vdd: 5}
	if err := bad.Validate(); err == nil {
		t.Error("inverted thresholds accepted")
	}
	if th.Level(Rising) != 1.5 || th.Level(Falling) != 3.5 {
		t.Error("measurement levels: rising->Vil, falling->Vih")
	}
	if th.FarLevel(Rising) != 3.5 || th.FarLevel(Falling) != 1.5 {
		t.Error("far levels swapped")
	}
}

func TestDelayMeasurementConvention(t *testing.T) {
	th := Thresholds{Vil: 1.0, Vih: 4.0, Vdd: 5}
	// Falling input: full-swing 5->0 over 1ns starting at t=0 crosses
	// Vih=4 at t = 0.2ns.
	in := FallingRamp(0, 1e-9, 5)
	tin, err := th.InputCross(in, Falling)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tin-0.2e-9) > 1e-15 {
		t.Errorf("input cross = %g, want 0.2ns", tin)
	}
	// Output: rising ramp 0->5 over 1ns starting at 0.5ns crosses Vil=1
	// at 0.5ns + (1/5)·1ns = 0.7ns. Delay = 0.7 - 0.2 = 0.5ns.
	out := mkTrace(t, []float64{0, 0.5e-9, 1.5e-9}, []float64{0, 0, 5})
	d, err := th.Delay(in, Falling, out, Rising)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5e-9) > 1e-15 {
		t.Errorf("delay = %g, want 0.5ns", d)
	}
}

func TestTransitionTimeSwingScaling(t *testing.T) {
	th := Thresholds{Vil: 1.0, Vih: 4.0, Vdd: 5}
	// Pure ramp output 0->5 over 1ns: Vil->Vih spans 0.6ns; scaled by
	// Vdd/(Vih-Vil) = 5/3 gives exactly the 1ns ramp duration.
	out := mkTrace(t, []float64{0, 1e-9}, []float64{0, 5})
	tt, err := th.TransitionTime(out, Rising)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt-1e-9) > 1e-15 {
		t.Errorf("transition time = %g, want 1ns (full-swing equivalent)", tt)
	}
}

func TestTransitionTimeUsesFinalTransition(t *testing.T) {
	th := Thresholds{Vil: 1.0, Vih: 4.0, Vdd: 5}
	// Glitchy output: rises, collapses, rises again. The measurement must
	// bracket the FINAL rise.
	out := mkTrace(t,
		[]float64{0, 1e-9, 2e-9, 4e-9},
		[]float64{0, 5, 0, 5})
	tt, err := th.TransitionTime(out, Rising)
	if err != nil {
		t.Fatal(err)
	}
	// Final rise spans 2ns full swing.
	if math.Abs(tt-2e-9) > 1e-15 {
		t.Errorf("transition time = %g, want 2ns", tt)
	}
}

func TestSeparationConvention(t *testing.T) {
	th := Thresholds{Vil: 1.0, Vih: 4.0, Vdd: 5}
	// Both falling 5->0 over 1ns; input 2 starts 0.3ns later.
	in1 := FallingRamp(0, 1e-9, 5)
	in2 := FallingRamp(0.3e-9, 1e-9, 5)
	s, err := th.Separation(in1, Falling, in2, Falling)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.3e-9) > 1e-15 {
		t.Errorf("separation = %g, want 0.3ns", s)
	}
}

func TestMeasurementErrors(t *testing.T) {
	th := Thresholds{Vil: 1.0, Vih: 4.0, Vdd: 5}
	flat := mkTrace(t, []float64{0, 1e-9}, []float64{0, 0})
	if _, err := th.OutputCross(flat, Rising); err == nil {
		t.Error("flat output produced a crossing")
	}
	if _, err := th.TransitionTime(flat, Rising); err == nil {
		t.Error("flat output produced a transition time")
	}
	stuck := MustPWL(Point{0, 2}, Point{1e-9, 2.1})
	if _, err := th.InputCross(stuck, Rising); err == nil {
		t.Error("input that never reaches Vil produced a crossing")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Rising.Opposite() != Falling || Falling.Opposite() != Rising {
		t.Error("Opposite broken")
	}
	if Rising.String() != "rising" || Falling.String() != "falling" {
		t.Error("Direction strings changed")
	}
}
