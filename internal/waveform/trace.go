package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Trace is a sampled waveform, typically a node voltage produced by the
// transient simulator. Sample times are strictly increasing but need not be
// uniform (the transient engine uses adaptive steps).
type Trace struct {
	T []float64
	V []float64
}

// NewTrace wraps sample slices (not copied) after validating them.
func NewTrace(t, v []float64) (*Trace, error) {
	if len(t) != len(v) {
		return nil, fmt.Errorf("waveform: trace length mismatch %d vs %d", len(t), len(v))
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("waveform: empty trace")
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return nil, fmt.Errorf("waveform: trace times must strictly increase (sample %d)", i)
		}
	}
	return &Trace{T: t, V: v}, nil
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.T) }

// Start and End return the sampled time extent.
func (tr *Trace) Start() float64 { return tr.T[0] }
func (tr *Trace) End() float64   { return tr.T[len(tr.T)-1] }

// Eval linearly interpolates the trace at time t, clamping outside the
// sampled range.
func (tr *Trace) Eval(t float64) float64 {
	if t <= tr.T[0] {
		return tr.V[0]
	}
	n := len(tr.T)
	if t >= tr.T[n-1] {
		return tr.V[n-1]
	}
	i := sort.SearchFloat64s(tr.T, t)
	if tr.T[i] == t {
		return tr.V[i]
	}
	t0, t1 := tr.T[i-1], tr.T[i]
	v0, v1 := tr.V[i-1], tr.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// CrossTime returns the first time at or after 'after' when the trace
// crosses 'level' in the given direction, using linear interpolation between
// samples. ok is false when no crossing exists.
func (tr *Trace) CrossTime(level float64, dir Direction, after float64) (t float64, ok bool) {
	for i := 1; i < len(tr.T); i++ {
		if tr.T[i] < after {
			continue
		}
		a := Point{T: tr.T[i-1], V: tr.V[i-1]}
		b := Point{T: tr.T[i], V: tr.V[i]}
		tc, hit := segmentCross(a, b, level, dir)
		if hit && tc >= after {
			return tc, true
		}
	}
	return 0, false
}

// LastCrossTime returns the final crossing of 'level' in the given
// direction, or ok=false when none exists. Delay measurement uses the last
// crossing so that glitch-induced early crossings do not masquerade as the
// real transition.
func (tr *Trace) LastCrossTime(level float64, dir Direction) (t float64, ok bool) {
	for i := len(tr.T) - 1; i >= 1; i-- {
		a := Point{T: tr.T[i-1], V: tr.V[i-1]}
		b := Point{T: tr.T[i], V: tr.V[i]}
		if tc, hit := segmentCross(a, b, level, dir); hit {
			return tc, true
		}
	}
	return 0, false
}

// Min returns the minimum sampled voltage and the time it occurs.
func (tr *Trace) Min() (v, t float64) {
	v, t = tr.V[0], tr.T[0]
	for i, x := range tr.V {
		if x < v {
			v, t = x, tr.T[i]
		}
	}
	return v, t
}

// Max returns the maximum sampled voltage and the time it occurs.
func (tr *Trace) Max() (v, t float64) {
	v, t = tr.V[0], tr.T[0]
	for i, x := range tr.V {
		if x > v {
			v, t = x, tr.T[i]
		}
	}
	return v, t
}

// Final returns the last sampled voltage.
func (tr *Trace) Final() float64 { return tr.V[len(tr.V)-1] }

// Resample returns the trace interpolated onto the given time grid.
func (tr *Trace) Resample(ts []float64) *Trace {
	vs := make([]float64, len(ts))
	for i, t := range ts {
		vs[i] = tr.Eval(t)
	}
	cp := make([]float64, len(ts))
	copy(cp, ts)
	return &Trace{T: cp, V: vs}
}

// Window returns the sub-trace with t in [t0, t1], always keeping at least
// one sample.
func (tr *Trace) Window(t0, t1 float64) *Trace {
	lo := sort.SearchFloat64s(tr.T, t0)
	hi := sort.SearchFloat64s(tr.T, t1)
	if hi < len(tr.T) && tr.T[hi] == t1 {
		hi++
	}
	if lo >= hi {
		if lo >= len(tr.T) {
			lo = len(tr.T) - 1
		}
		hi = lo + 1
	}
	return &Trace{T: tr.T[lo:hi], V: tr.V[lo:hi]}
}

// Settles reports whether the trace ends within tol of target and has
// stayed there for at least the trailing 'hold' seconds.
func (tr *Trace) Settles(target, tol, hold float64) bool {
	end := tr.End()
	for i := len(tr.T) - 1; i >= 0; i-- {
		if end-tr.T[i] > hold {
			return true
		}
		if math.Abs(tr.V[i]-target) > tol {
			return false
		}
	}
	// The whole trace is within tolerance but shorter than hold.
	return tr.End()-tr.Start() >= hold
}
