package waveform

import (
	"errors"
	"fmt"
)

// ErrNoCrossing is returned when a required threshold crossing is absent
// (e.g. the output never completed its transition).
var ErrNoCrossing = errors.New("waveform: required threshold crossing not found")

// Thresholds carries the delay-measurement voltage levels selected by the
// paper's Section 2 policy: the minimum Vil and maximum Vih over all VTCs of
// the gate. Rising signals are timed at Vil, falling signals at Vih, and
// transition times are measured between the two levels.
type Thresholds struct {
	Vil float64
	Vih float64
	Vdd float64
}

// Validate checks the invariant 0 < Vil < Vih < Vdd.
func (th Thresholds) Validate() error {
	if !(0 < th.Vil && th.Vil < th.Vih && th.Vih < th.Vdd) {
		return fmt.Errorf("waveform: invalid thresholds Vil=%g Vih=%g Vdd=%g (need 0 < Vil < Vih < Vdd)",
			th.Vil, th.Vih, th.Vdd)
	}
	return nil
}

// Level returns the measurement level for a transition in direction d:
// Vil for rising signals, Vih for falling signals (paper Sections 2–3).
func (th Thresholds) Level(d Direction) float64 {
	if d == Rising {
		return th.Vil
	}
	return th.Vih
}

// FarLevel returns the level a transition in direction d reaches last:
// Vih for rising, Vil for falling. Used for transition-time measurement.
func (th Thresholds) FarLevel(d Direction) float64 {
	if d == Rising {
		return th.Vih
	}
	return th.Vil
}

// swingScale converts a Vil-to-Vih interval into a full-swing-equivalent
// transition time so output transition times are commensurate with the
// full-swing ramp durations used to specify inputs.
func (th Thresholds) swingScale() float64 { return th.Vdd / (th.Vih - th.Vil) }

// InputCross returns the measurement-time of a PWL input transitioning in
// direction d: its first crossing of the direction's level.
func (th Thresholds) InputCross(in *PWL, d Direction) (float64, error) {
	t, ok := in.CrossTime(th.Level(d), d, in.Start()-1)
	if !ok {
		return 0, fmt.Errorf("%w: input never crosses %.3fV %s", ErrNoCrossing, th.Level(d), d)
	}
	return t, nil
}

// Separation returns s12 = t2 - t1, the temporal separation of input 2
// measured from input 1, each timed at its own direction's level.
func (th Thresholds) Separation(in1 *PWL, d1 Direction, in2 *PWL, d2 Direction) (float64, error) {
	t1, err := th.InputCross(in1, d1)
	if err != nil {
		return 0, fmt.Errorf("input 1: %w", err)
	}
	t2, err := th.InputCross(in2, d2)
	if err != nil {
		return 0, fmt.Errorf("input 2: %w", err)
	}
	return t2 - t1, nil
}

// OutputCross returns the time the output completes a transition in
// direction d through the measurement level. The *last* crossing is used so
// that proximity-induced glitches do not register as the final transition.
func (th Thresholds) OutputCross(out *Trace, d Direction) (float64, error) {
	t, ok := out.LastCrossTime(th.Level(d), d)
	if !ok {
		return 0, fmt.Errorf("%w: output never crosses %.3fV %s", ErrNoCrossing, th.Level(d), d)
	}
	return t, nil
}

// Delay measures propagation delay from a PWL input transitioning in
// direction din to a traced output transitioning in direction dout.
func (th Thresholds) Delay(in *PWL, din Direction, out *Trace, dout Direction) (float64, error) {
	ti, err := th.InputCross(in, din)
	if err != nil {
		return 0, err
	}
	to, err := th.OutputCross(out, dout)
	if err != nil {
		return 0, err
	}
	return to - ti, nil
}

// DelayFromTime measures delay from a known input measurement time.
func (th Thresholds) DelayFromTime(tin float64, out *Trace, dout Direction) (float64, error) {
	to, err := th.OutputCross(out, dout)
	if err != nil {
		return 0, err
	}
	return to - tin, nil
}

// TransitionTime measures the output transition time in direction d: the
// Vil-to-Vih (rising) or Vih-to-Vil (falling) interval around the final
// transition, scaled to full swing so it is commensurate with input ramp
// durations.
func (th Thresholds) TransitionTime(out *Trace, d Direction) (float64, error) {
	far := th.FarLevel(d)
	near := th.Level(d)
	tFar, ok := out.LastCrossTime(far, d)
	if !ok {
		return 0, fmt.Errorf("%w: output never crosses far level %.3fV %s", ErrNoCrossing, far, d)
	}
	// The matching near-level crossing is the last one before tFar.
	tNear := out.Start()
	found := false
	for after := out.Start() - 1; ; {
		t, ok := out.CrossTime(near, d, after)
		if !ok || t > tFar {
			break
		}
		tNear, found = t, true
		after = t + 1e-18
	}
	if !found {
		return 0, fmt.Errorf("%w: output never crosses near level %.3fV %s before far level", ErrNoCrossing, near, d)
	}
	return (tFar - tNear) * th.swingScale(), nil
}

// RampTransition returns the threshold-measured transition time of an ideal
// full-swing ramp of duration tt — by construction equal to tt after swing
// scaling. Exposed for tests and documentation of the convention.
func (th Thresholds) RampTransition(tt float64) float64 { return tt }
