package waveform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPWLValidation(t *testing.T) {
	if _, err := NewPWL(); err == nil {
		t.Error("empty PWL accepted")
	}
	if _, err := NewPWL(Point{1, 0}, Point{1, 5}); err == nil {
		t.Error("non-increasing breakpoints accepted")
	}
	if _, err := NewPWL(Point{2, 0}, Point{1, 5}); err == nil {
		t.Error("decreasing breakpoints accepted")
	}
}

func TestPWLEvalClamping(t *testing.T) {
	w := MustPWL(Point{1, 2}, Point{3, 6})
	cases := []struct{ t, v float64 }{
		{0, 2}, {1, 2}, {2, 4}, {3, 6}, {10, 6},
	}
	for _, c := range cases {
		if got := w.Eval(c.t); math.Abs(got-c.v) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.t, got, c.v)
		}
	}
}

func TestRampBuilders(t *testing.T) {
	r := RisingRamp(1e-9, 2e-9, 5)
	if got := r.Eval(2e-9); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("rising ramp midpoint = %g, want 2.5", got)
	}
	f := FallingRamp(0, 1e-9, 5)
	if got := f.Eval(0.2e-9); math.Abs(got-4) > 1e-12 {
		t.Errorf("falling ramp at 20%% = %g, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Ramp with non-positive duration should panic")
		}
	}()
	Ramp(0, 0, 0, 5)
}

func TestPulse(t *testing.T) {
	p := Pulse(1e-9, 0.1e-9, 1e-9, 0.2e-9, 0, 5)
	if got := p.Eval(1.5e-9); got != 5 {
		t.Errorf("pulse top = %g", got)
	}
	if got := p.Eval(3e-9); got != 0 {
		t.Errorf("pulse tail = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("pulse narrower than its edge should panic")
		}
	}()
	Pulse(0, 1e-9, 0.5e-9, 1e-9, 0, 5)
}

func TestCrossTimeDirections(t *testing.T) {
	w := MustPWL(Point{0, 0}, Point{1, 5}, Point{2, 0})
	up, ok := w.CrossTime(2.5, Rising, -1)
	if !ok || math.Abs(up-0.5) > 1e-12 {
		t.Errorf("rising cross = %g ok=%v, want 0.5", up, ok)
	}
	down, ok := w.CrossTime(2.5, Falling, -1)
	if !ok || math.Abs(down-1.5) > 1e-12 {
		t.Errorf("falling cross = %g ok=%v, want 1.5", down, ok)
	}
	if _, ok := w.CrossTime(6, Rising, -1); ok {
		t.Error("crossing above the waveform range reported")
	}
	// 'after' skips the first crossing.
	if _, ok := w.CrossTime(2.5, Rising, 0.6); ok {
		t.Error("rising crossing after 0.6 should not exist")
	}
}

func TestShiftPreservesShape(t *testing.T) {
	w := RisingRamp(0, 1e-9, 5)
	s := w.Shift(2e-9)
	if got := s.Eval(2.5e-9); math.Abs(got-w.Eval(0.5e-9)) > 1e-12 {
		t.Errorf("shifted eval mismatch: %g", got)
	}
	if s.Start() != 2e-9 {
		t.Errorf("shifted start = %g", s.Start())
	}
}

func TestBreakpointsMergeDedup(t *testing.T) {
	a := RisingRamp(0, 1e-9, 5)
	b := RisingRamp(0, 2e-9, 5)
	bps := Breakpoints(a, b, nil)
	want := []float64{0, 1e-9, 2e-9}
	if len(bps) != len(want) {
		t.Fatalf("breakpoints = %v, want %v", bps, want)
	}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-18 {
			t.Errorf("breakpoint %d = %g, want %g", i, bps[i], want[i])
		}
	}
}

// TestRampCrossingProperty: for random ramps, the crossing time of any
// interior level satisfies Eval(cross) == level.
func TestRampCrossingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		t0 := r.Float64() * 1e-9
		tt := 1e-12 + r.Float64()*2e-9
		vdd := 1 + r.Float64()*5
		w := RisingRamp(t0, tt, vdd)
		level := vdd * (0.05 + 0.9*r.Float64())
		tc, ok := w.CrossTime(level, Rising, t0-1)
		if !ok {
			return false
		}
		return math.Abs(w.Eval(tc)-level) < 1e-9*vdd
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPWLEvalMonotoneSegments: eval between two breakpoints stays within
// the segment's value range.
func TestPWLEvalBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		pts := make([]Point, n)
		tcur := 0.0
		for i := range pts {
			tcur += 1e-12 + r.Float64()*1e-10
			pts[i] = Point{T: tcur, V: r.Float64() * 5}
		}
		w := MustPWL(pts...)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			lo = math.Min(lo, p.V)
			hi = math.Max(hi, p.V)
		}
		for k := 0; k < 20; k++ {
			v := w.Eval(pts[0].T + r.Float64()*(pts[n-1].T-pts[0].T))
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
}
