package prox

import (
	"math"
	"path/filepath"
	"sync"
	"testing"
)

// facade rig: a fast-characterized NAND2 shared across the package tests.
var (
	fOnce  sync.Once
	fGate  *Gate
	fModel *Model
	fErr   error
)

func facadeRig(t *testing.T) (*Gate, *Model) {
	t.Helper()
	fOnce.Do(func() {
		fGate, fErr = BuildGate(NAND, 2, DefaultProcess(), DefaultGeometry())
		if fErr != nil {
			return
		}
		cfg := FastCharacterization()
		cfg.Glitch = [][2]int{{0, 1}}
		cfg.GlitchGrid.TausFall = []float64{100 * Picosecond, 1 * Nanosecond}
		cfg.GlitchGrid.TausRise = []float64{100 * Picosecond, 1 * Nanosecond}
		cfg.GlitchGrid.Seps = []float64{-1 * Nanosecond, -0.5 * Nanosecond, 0, 0.5 * Nanosecond, 1 * Nanosecond, 1.5 * Nanosecond, 2 * Nanosecond}
		cfg.Pulse = []int{0}
		cfg.PulseGrid.TausFirst = []float64{100 * Picosecond, 600 * Picosecond}
		cfg.PulseGrid.TausSecond = []float64{100 * Picosecond, 600 * Picosecond}
		cfg.PulseGrid.Widths = []float64{100 * Picosecond, 500 * Picosecond, 1 * Nanosecond, 1.6 * Nanosecond, 2.2 * Nanosecond}
		fModel, fErr = fGate.Characterize(cfg)
	})
	if fErr != nil {
		t.Fatal(fErr)
	}
	return fGate, fModel
}

func TestBuildGateExtractsThresholds(t *testing.T) {
	gate, _ := facadeRig(t)
	if err := gate.Th.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(gate.Family.Curves) != 3 {
		t.Errorf("NAND2 family has %d curves, want 3", len(gate.Family.Curves))
	}
	if gate.Cell() == nil {
		t.Error("cell accessor nil")
	}
}

func TestBuildGateValidation(t *testing.T) {
	if _, err := BuildGate(INV, 3, DefaultProcess(), DefaultGeometry()); err == nil {
		t.Error("3-input inverter accepted")
	}
}

func TestDelayEvaluation(t *testing.T) {
	_, model := facadeRig(t)
	res, err := model.Delay([]Transition{
		{Pin: 0, Dir: Falling, TT: 500 * Picosecond, At: 0},
		{Pin: 1, Dir: Falling, TT: 100 * Picosecond, At: 50 * Picosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 {
		t.Errorf("delay = %g", res.Delay)
	}
	single, _, err := model.SingleDelay(0, Falling, 500*Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay >= single {
		t.Errorf("proximity pair (%.1fps) should be faster than the slow input alone (%.1fps)",
			res.Delay/Picosecond, single/Picosecond)
	}
}

func TestModelSaveLoad(t *testing.T) {
	_, model := facadeRig(t)
	path := filepath.Join(t.TempDir(), "nand2.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := []Transition{
		{Pin: 0, Dir: Rising, TT: 300 * Picosecond, At: 0},
		{Pin: 1, Dir: Rising, TT: 300 * Picosecond, At: 20 * Picosecond},
	}
	a, err := model.Delay(ts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Delay(ts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Delay-b.Delay) > 1e-18 {
		t.Errorf("loaded model disagrees: %.2fps vs %.2fps", a.Delay/Picosecond, b.Delay/Picosecond)
	}
	if loaded.Gate != nil {
		t.Error("loaded model should not claim a live gate")
	}
}

func TestInertialDelayFacade(t *testing.T) {
	_, model := facadeRig(t)
	sep, ok, err := model.InertialDelay(0, 1, 500*Picosecond, 500*Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no inertial boundary in characterized range")
	}
	if sep <= 0 || sep > 2*Nanosecond {
		t.Errorf("inertial delay %.0fps out of plausible range", sep/Picosecond)
	}
	if _, _, err := model.InertialDelay(1, 0, 1e-10, 1e-10); err == nil {
		t.Error("uncharacterized glitch pair accepted")
	}
}

func TestMinPulseWidthFacade(t *testing.T) {
	_, model := facadeRig(t)
	w, ok, err := model.MinPulseWidth(0, 200*Picosecond, 200*Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no transmittable width in characterized range")
	}
	if w <= 0 || w > 2.2*Nanosecond {
		t.Errorf("min pulse width %.0fps out of range", w/Picosecond)
	}
	if _, _, err := model.MinPulseWidth(1, 1e-10, 1e-10); err == nil {
		t.Error("uncharacterized pulse pin accepted")
	}
}

func TestCalculatorAccessor(t *testing.T) {
	_, model := facadeRig(t)
	if model.Calculator() == nil {
		t.Fatal("calculator accessor nil")
	}
	// Ablation flags are reachable through the accessor.
	model.Calculator().DisableCorrection = true
	defer func() { model.Calculator().DisableCorrection = false }()
	res, err := model.Delay([]Transition{
		{Pin: 0, Dir: Falling, TT: 100 * Picosecond, At: 0},
		{Pin: 1, Dir: Falling, TT: 100 * Picosecond, At: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CorrectionApplied != 0 {
		t.Error("correction applied while disabled")
	}
}

func TestSimHarnessAccess(t *testing.T) {
	gate, _ := facadeRig(t)
	sim := gate.Sim()
	d, tt, err := sim.RunSingle(0, Falling, 300*Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || tt <= 0 {
		t.Errorf("sim measurements: d=%g tt=%g", d, tt)
	}
}
