* CMOS inverter step response.
* Run: go run ./cmd/proxsim -deck testdata/inverter.sp -o waves.csv
.title inverter
Vdd vdd 0 5
Vin in  0 PWL(0 0 0.5n 0 0.8n 5)
M1  out in vdd vdd pmos W=8u L=1u
M2  out in 0   0   nmos W=8u L=1u
C1  out 0 100f
.model nmos nmos KP=60u VTO=0.8 LAMBDA=0.05 GAMMA=0.4 PHI=0.65
.model pmos pmos KP=25u VTO=-0.9 LAMBDA=0.05 GAMMA=0.5 PHI=0.65
.tran 4n
.end
