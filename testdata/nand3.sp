* The paper's Figure 1-1 three-input NAND: a slow fall, b fast fall, c high.
* Run: go run ./cmd/proxsim -deck testdata/nand3.sp
.title nand3 proximity
Vdd vdd 0 5
Va  a   0 PWL(0 5 0.5n 5 1.0n 0)
Vb  b   0 PWL(0 5 0.62n 5 0.72n 0)
Vc  c   0 5
M1  out a vdd vdd pmos W=8u L=1u
M2  out b vdd vdd pmos W=8u L=1u
M3  out c vdd vdd pmos W=8u L=1u
M4  out a x1  0   nmos W=8u L=1u
M5  x1  b x2  0   nmos W=8u L=1u
M6  x2  c 0   0   nmos W=8u L=1u
CL  out 0 100f
.model nmos nmos KP=60u VTO=0.8 LAMBDA=0.05 GAMMA=0.4 PHI=0.65
.model pmos pmos KP=25u VTO=-0.9 LAMBDA=0.05 GAMMA=0.5 PHI=0.65
.tran 5n
.end
