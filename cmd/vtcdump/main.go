// Command vtcdump extracts the VTC family of a library cell (Figure 2-1 of
// the paper) and prints the critical-voltage table plus the Section-2
// threshold selection. With -curves the full transfer curves are emitted as
// CSV.
//
//	vtcdump -gate nand3
//	vtcdump -gate nor2 -curves -o vtc.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cells"
	"repro/internal/spice"
	"repro/internal/vtc"
)

func main() {
	var (
		gateName = flag.String("gate", "nand3", "cell: inv, nand2..nand4, nor2..nor4")
		step     = flag.Float64("step", 0.01, "DC sweep step in volts")
		curves   = flag.Bool("curves", false, "emit full transfer curves as CSV")
		out      = flag.String("o", "", "CSV output file for -curves (default stdout)")
	)
	flag.Parse()
	if err := run(*gateName, *step, *curves, *out); err != nil {
		fmt.Fprintf(os.Stderr, "vtcdump: %v\n", err)
		os.Exit(1)
	}
}

func run(gateName string, step float64, curves bool, outPath string) error {
	kind, n, err := parseGate(gateName)
	if err != nil {
		return err
	}
	cell, err := cells.New(kind, n, cells.DefaultProcess(), cells.DefaultGeometry())
	if err != nil {
		return err
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), step)
	if err != nil {
		return err
	}

	fmt.Printf("VTC family of %s (%d curves):\n\n", gateName, len(fam.Curves))
	fmt.Printf("%-10s %8s %8s %8s\n", "switching", "Vil (V)", "Vih (V)", "Vm (V)")
	for _, c := range fam.Curves {
		fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", "{"+vtc.SubsetName(c.Subset)+"}", c.Vil, c.Vih, c.Vm)
	}
	fmt.Printf("\nselected thresholds (min Vil / max Vih): Vil=%.3f V, Vih=%.3f V\n",
		fam.Thresholds.Vil, fam.Thresholds.Vih)

	if !curves {
		return nil
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "vin_V")
	for _, c := range fam.Curves {
		fmt.Fprintf(w, ",vout_%s_V", vtc.SubsetName(c.Subset))
	}
	fmt.Fprintln(w)
	for i := range fam.Curves[0].In {
		fmt.Fprintf(w, "%.4f", fam.Curves[0].In[i])
		for _, c := range fam.Curves {
			fmt.Fprintf(w, ",%.5f", c.Out[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// parseGate mirrors cmd/proxsim's naming.
func parseGate(name string) (cells.Kind, int, error) {
	switch name {
	case "inv":
		return cells.Inv, 1, nil
	case "nand2":
		return cells.Nand, 2, nil
	case "nand3":
		return cells.Nand, 3, nil
	case "nand4":
		return cells.Nand, 4, nil
	case "nor2":
		return cells.Nor, 2, nil
	case "nor3":
		return cells.Nor, 3, nil
	case "nor4":
		return cells.Nor, 4, nil
	}
	return 0, 0, fmt.Errorf("unknown gate %q", name)
}
