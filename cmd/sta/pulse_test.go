package main

import (
	"strings"
	"testing"
)

// TestFlagConflicts walks the cross-flag matrix: every rejected combination
// must name the offending flag, every supported one must pass — in both
// local and -server modes.
func TestFlagConflicts(t *testing.T) {
	mc := &mcSpec{samples: 16, sigma: 0.05}
	cases := []struct {
		name        string
		pulseFilter bool
		mc          *mcSpec
		deltaSet    string
		deltaRemove string
		server      string
		trace       string
		explain     string
		wantSub     string // "" = must pass
	}{
		{name: "plain local", wantSub: ""},
		{name: "pulse local", pulseFilter: true, wantSub: ""},
		{name: "pulse with explain local", pulseFilter: true, explain: "y", wantSub: ""},
		{name: "pulse with server", pulseFilter: true, server: "http://h", wantSub: ""},
		{name: "mc local", mc: mc, wantSub: ""},
		{name: "delta local", deltaSet: "a:rise:300:0", wantSub: ""},

		// Pulse filtering composes with every analysis mode: deltas re-judge
		// edited cones under the same filtering, MC reports glitch criticality.
		{name: "pulse with mc", pulseFilter: true, mc: mc, wantSub: ""},
		{name: "pulse with delta set", pulseFilter: true, deltaSet: "a:rise:300:0", wantSub: ""},
		{name: "pulse with delta remove", pulseFilter: true, deltaRemove: "a:rise", wantSub: ""},
		{name: "pulse with server mc", pulseFilter: true, server: "http://h", mc: mc, wantSub: ""},
		{name: "pulse with server delta", pulseFilter: true, server: "http://h", deltaSet: "a:rise:300:0", wantSub: ""},

		{name: "mc x delta", mc: mc, deltaSet: "a:rise:300:0", wantSub: "-mc-samples"},
		{name: "pulse x mc x delta still conflicts", pulseFilter: true, mc: mc, deltaSet: "a:rise:300:0", wantSub: "-mc-samples"},
		{name: "server x trace", server: "http://h", trace: "t.json", wantSub: "-trace"},
		{name: "server x explain", server: "http://h", explain: "y", wantSub: "-explain"},
		{name: "pulse x server x explain", pulseFilter: true, server: "http://h", explain: "y", wantSub: "-explain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := flagConflicts(tc.pulseFilter, tc.mc, tc.deltaSet, tc.deltaRemove, tc.server, tc.trace, tc.explain)
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("supported combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("conflicting combination accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name %s", err, tc.wantSub)
			}
		})
	}
}
