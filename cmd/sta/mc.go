package main

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/sta"
)

// mcSpec carries the -mc-* flags once validated. samples > 0 switches the
// run into Monte-Carlo mode.
type mcSpec struct {
	samples int
	seed    uint64
	sigma   float64
	corners []string
}

// parseMCSpec validates the -mc-* flags, naming the offending flag in every
// error (the engine re-validates, but a CLI user should see the flag, not an
// internal field).
func parseMCSpec(samples int, seed uint64, sigma float64, cornerList string) (*mcSpec, error) {
	if samples == 0 {
		return nil, nil
	}
	if samples < 0 {
		return nil, fmt.Errorf("-mc-samples must be positive (got %d)", samples)
	}
	if math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 {
		return nil, fmt.Errorf("-mc-sigma must be finite and non-negative (got %v)", sigma)
	}
	spec := &mcSpec{samples: samples, seed: seed, sigma: sigma}
	for _, name := range strings.Split(cornerList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			spec.corners = append(spec.corners, name)
		}
	}
	return spec, nil
}

// runMC runs the Monte-Carlo analysis locally and prints per-output arrival
// distributions, the histogram of the worst output, gate criticality and any
// requested corners.
func runMC(c *sta.Circuit, evs []sta.PIEvent, modes []sta.Mode, opt sta.Options, spec *mcSpec) error {
	for _, m := range modes {
		mcOpt := sta.MCOptions{
			Samples: spec.samples, Seed: spec.seed, Sigma: spec.sigma, Corners: spec.corners,
		}
		mcOpt.Options = opt
		res, err := c.AnalyzeMC(evs, m, mcOpt)
		if err != nil {
			return err
		}
		fmt.Printf("\n== %s Monte-Carlo — %d samples, sigma %g, seed %d ==\n",
			m, res.Samples, res.Sigma, res.Seed)
		fmt.Printf("%-12s %-8s %5s %9s %8s %9s %9s %9s %9s\n",
			"output", "dir", "n", "mean/ps", "std/ps", "p50/ps", "p95/ps", "p99/ps", "max/ps")
		for _, od := range res.Outputs {
			d := od.Dist
			fmt.Printf("%-12s %-8v %5d %9.1f %8.2f %9.1f %9.1f %9.1f %9.1f\n",
				od.Net.Name, od.Dir, d.N, d.Mean*1e12, d.Std*1e12,
				d.P50*1e12, d.P95*1e12, d.P99*1e12, d.Max*1e12)
		}
		// Histogram of the latest-mean output — the distribution that decides
		// the yield question the run exists to answer.
		if len(res.Outputs) > 0 {
			worst := res.Outputs[0]
			for _, od := range res.Outputs[1:] {
				if od.Dist.Mean > worst.Dist.Mean {
					worst = od
				}
			}
			if h := worst.Dist.Hist; h != nil {
				ps := *h // shallow copy: rescale the axis to picoseconds for display
				ps.Lo *= 1e12
				ps.Hi *= 1e12
				fmt.Printf("\n%s", ps.Render(fmt.Sprintf("arrival distribution: %s %v (ps)", worst.Net.Name, worst.Dir)))
			}
		}
		if len(res.Criticality) > 0 {
			fmt.Printf("\ncriticality (P[gate on sample-critical path]):\n")
			for i, gc := range res.Criticality {
				if i >= 10 {
					fmt.Printf("  ... %d more gates\n", len(res.Criticality)-i)
					break
				}
				fmt.Printf("  %-12s %-8s -> %-12s %6.1f%%  (%d/%d)\n",
					gc.Gate.Name, gc.Gate.Type, gc.Gate.Out.Name, gc.Probability*100, gc.Count, res.Samples)
			}
		}
		if len(res.GlitchCriticality) > 0 {
			fmt.Printf("\nglitch criticality (P[pair absorbed] / P[pair degraded]):\n")
			for i, gc := range res.GlitchCriticality {
				if i >= 10 {
					fmt.Printf("  ... %d more gates\n", len(res.GlitchCriticality)-i)
					break
				}
				fmt.Printf("  %-12s %-8s -> %-12s %6.1f%% / %6.1f%%  (%d/%d abs, %d/%d deg)\n",
					gc.Gate.Name, gc.Gate.Type, gc.Gate.Out.Name,
					gc.PAbsorbed*100, gc.PDegraded*100,
					gc.Absorbed, res.Samples, gc.Degraded, res.Samples)
			}
		}
		if s := res.Stats; s.PulsesFiltered > 0 || s.PulsesDegraded > 0 || s.PulsesUnjudged > 0 {
			fmt.Printf("\npulse filtering: absorbed %d runt pulses, degraded %d, unjudged %d across samples\n",
				s.PulsesFiltered, s.PulsesDegraded, s.PulsesUnjudged)
		}
		for _, cr := range res.Corners {
			fmt.Printf("\ncorner %s (x%.2f):", cr.Name, cr.Multiplier)
			for _, po := range c.POs {
				if arr, ok := cr.Result.Latest(po); ok {
					fmt.Printf(" %s=%v@%.1fps", po.Name, arr.Dir, arr.Time*1e12)
				}
			}
			fmt.Println()
		}
		fmt.Printf("\nevaluated %d gates across %d samples (%d workers), mc=%s wall=%s\n",
			res.Stats.GatesEvaluated, res.Samples, res.Stats.Workers,
			res.Stats.Phases.Sum().Round(time.Microsecond), res.Stats.Wall.Round(time.Microsecond))
	}
	return nil
}

// runRemoteMC ships the Monte-Carlo run to a stad daemon via /v1/analyze:mc
// and prints the wire distributions (already in picoseconds).
func runRemoteMC(base, netlistID string, vector []service.Event, modes []string, spec *mcSpec, pulseFilter bool) error {
	for _, m := range modes {
		req := service.MCRequest{
			Netlist: netlistID, Mode: m, Vector: vector,
			Samples: spec.samples, Seed: spec.seed, Sigma: spec.sigma, Corners: spec.corners,
			PulseFilter: pulseFilter,
		}
		var resp service.MCResponse
		if err := postJSON(base+"/v1/analyze:mc", req, &resp); err != nil {
			return fmt.Errorf("mc (%s): %w", m, err)
		}
		fmt.Printf("\n== %s Monte-Carlo @ %s — %d samples, sigma %g, seed %d ==\n",
			resp.Mode, base, resp.Samples, resp.Sigma, resp.Seed)
		fmt.Printf("%-12s %-8s %5s %9s %8s %9s %9s %9s %9s\n",
			"output", "dir", "n", "mean/ps", "std/ps", "p50/ps", "p95/ps", "p99/ps", "max/ps")
		for _, od := range resp.Outputs {
			fmt.Printf("%-12s %-8s %5d %9.1f %8.2f %9.1f %9.1f %9.1f %9.1f\n",
				od.Net, od.Dir, od.N, od.MeanPs, od.StdPs, od.P50Ps, od.P95Ps, od.P99Ps, od.MaxPs)
		}
		if len(resp.Criticality) > 0 {
			fmt.Printf("criticality:")
			for i, gc := range resp.Criticality {
				if i >= 10 {
					fmt.Printf(" ...")
					break
				}
				fmt.Printf(" %s=%.0f%%", gc.Gate, gc.Probability*100)
			}
			fmt.Println()
		}
		if len(resp.GlitchCriticality) > 0 {
			fmt.Printf("glitch criticality (P[absorbed]/P[degraded]):")
			for i, gc := range resp.GlitchCriticality {
				if i >= 10 {
					fmt.Printf(" ...")
					break
				}
				fmt.Printf(" %s=%.0f%%/%.0f%%", gc.Gate, gc.PAbsorbed*100, gc.PDegraded*100)
			}
			fmt.Println()
		}
		if resp.PulsesFiltered > 0 || resp.PulsesDegraded > 0 || resp.PulsesUnjudged > 0 {
			fmt.Printf("pulse filtering: absorbed %d runt pulses, degraded %d, unjudged %d across samples\n",
				resp.PulsesFiltered, resp.PulsesDegraded, resp.PulsesUnjudged)
		}
		for _, cr := range resp.Corners {
			fmt.Printf("corner %s (x%.2f):", cr.Name, cr.Multiplier)
			for _, a := range cr.Arrivals {
				fmt.Printf(" %s=%s@%.1fps", a.Net, a.Dir, a.TimePs)
			}
			fmt.Println()
		}
		fmt.Printf("evaluated %d gates server-side\n", resp.GatesEvaluated)
	}
	return nil
}
