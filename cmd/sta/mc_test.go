package main

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sta"
)

// TestParseMCSpec: the flag parser names the offending flag in every error
// and splits the corner list.
func TestParseMCSpec(t *testing.T) {
	if spec, err := parseMCSpec(0, 0, 0.05, ""); spec != nil || err != nil {
		t.Fatalf("samples=0 should disable MC, got %+v / %v", spec, err)
	}
	if _, err := parseMCSpec(-4, 0, 0.05, ""); err == nil || !strings.Contains(err.Error(), "-mc-samples") {
		t.Fatalf("negative samples: %v", err)
	}
	for _, sigma := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := parseMCSpec(8, 0, sigma, ""); err == nil || !strings.Contains(err.Error(), "-mc-sigma") {
			t.Fatalf("sigma %v: %v", sigma, err)
		}
	}
	spec, err := parseMCSpec(16, 9, 0.02, " slow, typ ,fast ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.samples != 16 || spec.seed != 9 || spec.sigma != 0.02 || len(spec.corners) != 3 ||
		spec.corners[0] != "slow" || spec.corners[2] != "fast" {
		t.Fatalf("spec %+v", spec)
	}
}

// TestRunMCLocal drives the local Monte-Carlo printer end to end over the
// tiny test circuit — the CLI path must survive a real engine run.
func TestRunMCLocal(t *testing.T) {
	c := testCircuit(t)
	evs, err := sta.ParseEvents(c, "a:rise:300:0,b:rise:250:30")
	if err != nil {
		t.Fatal(err)
	}
	spec := &mcSpec{samples: 16, seed: 3, sigma: 0.04, corners: []string{"slow", "typ", "fast"}}
	if err := runMC(c, evs, []sta.Mode{sta.Proximity, sta.Conventional}, sta.Options{Workers: 1}, spec); err != nil {
		t.Fatal(err)
	}
	// Unknown corners surface as engine validation errors naming the value.
	bad := &mcSpec{samples: 4, sigma: 0.04, corners: []string{"ss"}}
	if err := runMC(c, evs, []sta.Mode{sta.Proximity}, sta.Options{Workers: 1}, bad); err == nil ||
		!strings.Contains(err.Error(), "corner") {
		t.Fatalf("unknown corner: %v", err)
	}
}
