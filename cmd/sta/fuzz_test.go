package main

import (
	"strings"
	"testing"

	"repro/internal/sta"
)

// FuzzParseBatch: the ';'-separated batch-vector spec must never panic the
// splitter, and any spec it accepts must yield at least one vector with at
// least one event each (blank segments are skipped, not materialized).
func FuzzParseBatch(f *testing.F) {
	seeds := []string{
		"a:rise:300:0;b:fall:200:10",
		"a:rise:300:0",
		";;a:rise:300:0;;",
		"a:rise:NaN:0;b:fall:200:10",
		"a:rise:300:0;bogus",
		"a:rise:300:0,b:fall:200:5;a:fall:250:40",
		";",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lib := sta.SynthLibrary(2)
	c, err := sta.ParseNetlist(strings.NewReader(
		"input a b\ngate g1 nand2 x a b\noutput x\n"), lib)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1<<12 {
			return
		}
		batch, err := parseBatch(c, spec)
		if err != nil {
			return
		}
		if len(batch) == 0 {
			t.Fatalf("parseBatch accepted %q with zero vectors", spec)
		}
		for i, vec := range batch {
			if len(vec) == 0 {
				t.Fatalf("parseBatch accepted %q with empty vector %d", spec, i)
			}
		}
	})
}
