package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/obs"
	"repro/internal/sta"
	"repro/internal/waveform"
)

// testCircuit builds a tiny two-gate circuit with synthetic models, enough
// for ParseEvents to resolve net names.
func testCircuit(t *testing.T) *sta.Circuit {
	t.Helper()
	lib := sta.NewLibrary()
	lib.Add("nand2", core.NewCalculator(macromodel.SynthModel("nand", 2)))
	lib.Add("inv", core.NewCalculator(macromodel.SynthModel("inv", 1)))
	const netlist = `
input a b
gate g1 nand2 n1 a b
gate g2 inv   y n1
output y
`
	c, err := sta.ParseNetlist(strings.NewReader(netlist), lib)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseBatchSplitsVectors(t *testing.T) {
	c := testCircuit(t)
	batch, err := parseBatch(c, "a:rise:300:0,b:rise:250:30;a:fall:200:0;b:r:100:10")
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("got %d vectors, want 3", len(batch))
	}
	if len(batch[0]) != 2 || len(batch[1]) != 1 || len(batch[2]) != 1 {
		t.Fatalf("vector sizes %d/%d/%d, want 2/1/1", len(batch[0]), len(batch[1]), len(batch[2]))
	}
	if batch[0][0].Net.Name != "a" || batch[1][0].Net.Name != "a" || batch[2][0].Net.Name != "b" {
		t.Fatal("events assigned to the wrong vectors")
	}
}

func TestParseBatchSkipsEmptySegments(t *testing.T) {
	c := testCircuit(t)
	// Leading, doubled, and trailing separators — plus whitespace-only
	// segments — must all be ignored, not parsed as empty vectors.
	batch, err := parseBatch(c, ";a:rise:300:0;;  ;b:fall:200:10;")
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("got %d vectors, want 2", len(batch))
	}
}

func TestParseBatchAllEmpty(t *testing.T) {
	c := testCircuit(t)
	for _, spec := range []string{"", ";", " ; ; "} {
		if _, err := parseBatch(c, spec); err == nil {
			t.Errorf("spec %q: expected error for all-empty batch", spec)
		}
	}
}

// Duplicate PI events across segments are legal: the vectors are independent
// stimuli sharing one levelization, so each may stimulate the same input.
func TestParseBatchDuplicateEventsAcrossSegments(t *testing.T) {
	c := testCircuit(t)
	batch, err := parseBatch(c, "a:rise:300:0;a:rise:300:0;a:rise:300:50")
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("got %d vectors, want 3", len(batch))
	}
	// And each vector still analyzes cleanly on its own.
	if _, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: 1}); err != nil {
		t.Fatalf("batch with repeated PI events failed to analyze: %v", err)
	}
}

func TestParseBatchMalformedEvents(t *testing.T) {
	c := testCircuit(t)
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"a:rise:300:0;b:sideways:200:10", "vector 1"},   // bad direction, right index
		{"a:rise:300:0;;nope:rise:100:0", "unknown net"}, // unknown net after a skipped segment
		{"a:rise:300", "want net:dir:tt_ps:time_ps"},     // missing field
		{"a:rise:-5:0", "bad transition time"},           // non-positive tt
		{"a:rise:300:xyz", "bad time"},                   // unparseable arrival
		{"a:rise:300:0;b:fall:zz:0", "vector 1"},         // second vector's tt malformed
	}
	for _, tc := range cases {
		_, err := parseBatch(c, tc.spec)
		if err == nil {
			t.Errorf("spec %q: expected error", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

// The -server client parses the same syntax without a Circuit; its errors
// must carry the vector index too, and blank segments behave identically.
func TestParseWireBatch(t *testing.T) {
	vecs, err := parseWireBatch("a:rise:300:0,b:r:250:30;;a:fall:200:5;")
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 2 || len(vecs[0]) != 2 || len(vecs[1]) != 1 {
		t.Fatalf("got %d vectors (sizes %v), want 2", len(vecs), []int{len(vecs[0])})
	}
	if vecs[1][0].Net != "a" || vecs[1][0].Dir != "fall" || vecs[1][0].TTPs != 200 || vecs[1][0].TimePs != 5 {
		t.Fatalf("wire event mismatch: %+v", vecs[1][0])
	}
	for _, spec := range []string{"", ";", "a:rise:300:0;b:bad:1:2", "a:rise:0:0"} {
		if _, err := parseWireBatch(spec); err == nil {
			t.Errorf("spec %q: expected error", spec)
		}
	}
	if _, err := parseWireBatch("ok:rise:1:0;x:rise:nan-ish:0"); err == nil || !strings.Contains(err.Error(), "vector 1") {
		t.Errorf("error %v does not carry the vector index", err)
	}
}

// TestParseDelta: the -delta/-delta-remove syntax resolves against circuit
// nets and the parsed edit re-times to exactly what a full analysis of the
// edited vector produces.
func TestParseDelta(t *testing.T) {
	c := testCircuit(t)
	delta, err := parseDelta(c, "a:rise:300:40", "b:r")
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Set) != 1 || delta.Set[0].Net.Name != "a" {
		t.Fatalf("bad set: %+v", delta.Set)
	}
	if len(delta.Remove) != 1 || delta.Remove[0].Net.Name != "b" {
		t.Fatalf("bad remove: %+v", delta.Remove)
	}

	base, err := sta.ParseEvents(c, "a:rise:300:0,b:rise:250:30")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AnalyzeOpts(base, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := c.AnalyzeDelta(res, delta, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	edited, err := sta.ParseEvents(c, "a:rise:300:40")
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.AnalyzeOpts(edited, sta.Proximity, sta.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Compare every net/direction bit-exactly.
	for _, name := range c.NetsByName() {
		n := c.Net(name)
		for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
			da, dok := dres.Arrival(n, dir)
			fa, fok := full.Arrival(n, dir)
			if dok != fok || da != fa {
				t.Errorf("net %s %v: delta (%v %+v) vs full (%v %+v)", name, dir, dok, da, fok, fa)
			}
		}
	}

	for _, bad := range []struct{ set, rm string }{
		{"nope:rise:300:0", ""}, {"", "nope:r"}, {"", "a"}, {"", "a:sideways"},
	} {
		if _, err := parseDelta(c, bad.set, bad.rm); err == nil {
			t.Errorf("parseDelta(%q, %q): expected error", bad.set, bad.rm)
		}
	}
}

// TestParseWireDelta: the -server client's syntactic-only counterpart.
func TestParseWireDelta(t *testing.T) {
	set, remove, err := parseWireDelta("a:rise:300:40,b:f:200:10", "b:r, c:fall")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Net != "a" || set[1].Dir != "f" {
		t.Fatalf("bad set: %+v", set)
	}
	if len(remove) != 2 || remove[0].Net != "b" || remove[1].Dir != "fall" {
		t.Fatalf("bad remove: %+v", remove)
	}
	for _, bad := range []struct{ set, rm string }{
		{"a:rise:300", ""}, {"", "a"}, {"", "a:sideways"}, {"a:rise:300:0;b:rise:1:0", ""},
	} {
		if _, _, err := parseWireDelta(bad.set, bad.rm); err == nil {
			t.Errorf("parseWireDelta(%q, %q): expected error", bad.set, bad.rm)
		}
	}
}

// TestTraceFileIsValidChrome: the -trace path must produce a file the
// Chrome trace viewer loads — decoded and structurally checked by the same
// validator CI runs against the shipped binary.
func TestTraceFileIsValidChrome(t *testing.T) {
	c := testCircuit(t)
	evs, err := sta.ParseEvents(c, "a:rise:300:0,b:rise:250:30")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	if _, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: 2, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ValidateChromeTrace(data)
	if err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file is empty")
	}
}
