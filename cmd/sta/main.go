// Command sta runs proximity-aware static timing analysis on a gate-level
// netlist, using the paper's delay model for gates whose inputs switch in
// close temporal proximity.
//
//	sta -netlist adder.net -event a:rise:300:0,b:rise:250:30 -mode both
//
// Gate types referenced by the netlist are characterized on the fly
// (-char nand2,inv — coarse grids unless -full) or loaded from JSON model
// files produced by charz (-model nand2=nand2.json).
//
// Large netlists: -workers bounds the per-level evaluation concurrency
// (0 = one per CPU, 1 = serial; results are identical either way). Several
// independent stimulus vectors may be batched in one run by separating them
// with ';' in -event — they share one levelization of the netlist. By
// default only the gates inside the stimulated inputs' fanout cones are
// scheduled (-sparse=false forces the dense full-schedule walk; results are
// bit-identical, sparse is just faster on partial stimuli).
//
// ECO-style what-if queries: -delta re-times the -event baseline under a
// stimulus edit (-delta sets/replaces events, -delta-remove withdraws them)
// by propagating only the nets whose arrivals actually change — the answer
// is bit-identical to a full analysis of the edited vector, at a fraction
// of the work on large netlists.
//
// Statistical timing: -mc-samples N re-times the vector N times with
// per-gate delay multipliers 1+sigma*N(0,1) drawn from a deterministic
// counter PRNG (-mc-seed selects the stream, -mc-sigma the spread) and
// reports per-output arrival distributions, a histogram, and per-gate
// criticality — the probability a gate lies on a sample's critical path.
// -mc-corners slow,typ,fast adds global corner presets.
//
// With -server http://host:port the analysis runs on a stad daemon instead
// of in-process: the netlist is uploaded once, the vectors go through
// /v1/analyze:batch, and the daemon's characterized model registry supplies
// the cell models (-char/-model are ignored). -delta maps onto
// keepBaseline + POST /v1/analyze:delta.
//
// Netlist format:
//
//	input a b cin
//	gate g1 nand2 n1 a b
//	gate g2 inv   n2 n1
//	output n2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/obs"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/table"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

func main() {
	var (
		netlist = flag.String("netlist", "", "netlist file (required)")
		events  = flag.String("event", "", "primary-input events net:dir:tt_ps:time_ps,... (required)")
		char    = flag.String("char", "nand2,inv", "gate types to characterize on the fly")
		models  = flag.String("model", "", "pre-characterized models type=file.json,...")
		mode    = flag.String("mode", "both", "analysis mode: prox, conv or both")
		full    = flag.Bool("full", false, "use full characterization grids")
		loadFF  = flag.Float64("cl", 100, "characterization load in fF")
		reqPS   = flag.Float64("required", 0, "required time at primary outputs in ps (0 = no slack report)")
		workers = flag.Int("workers", 0, "evaluation workers per level (0 = one per CPU, 1 = serial)")
		sparse  = flag.Bool("sparse", true, "cone-pruned sparse scheduling (false = dense full-schedule walk; results are identical)")
		server  = flag.String("server", "", "stad base URL; analysis runs on the daemon instead of in-process")
		tracef  = flag.String("trace", "", "write a Chrome trace_event JSON of the engine phases to this file (load in chrome://tracing or Perfetto)")
		explain = flag.String("explain", "", "comma-separated nets: print the proximity decision trace behind each net's arrivals")
		vtrace  = flag.String("validate-trace", "", "validate a Chrome trace JSON file produced by -trace, then exit (used by CI)")
		deltaS  = flag.String("delta", "", "re-time the -event baseline under a stimulus edit: set/replace events net:dir:tt_ps:time_ps,... (single vector only)")
		deltaR  = flag.String("delta-remove", "", "baseline events to withdraw before -delta sets apply: net:dir,...")
		pulseF  = flag.Bool("pulse-filter", false, "apply the paper's Section-6 inertial-delay model: opposite-edge arrival pairs on a gate output below the pair's minimum separation are absorbed, survivors propagate a degraded transition time (characterizes glitch tables for -char types)")

		mcSamples = flag.Int("mc-samples", 0, "Monte-Carlo samples under process variation (0 = deterministic analysis)")
		mcSeed    = flag.Uint64("mc-seed", 0, "Monte-Carlo deviate stream seed (same seed+samples reproduces the run bit-for-bit)")
		mcSigma   = flag.Float64("mc-sigma", 0.05, "per-gate delay-multiplier standard deviation (delay scales by 1+sigma*N)")
		mcCorners = flag.String("mc-corners", "", "corner presets to evaluate alongside the samples: slow,typ,fast")
	)
	flag.Parse()
	if *vtrace != "" {
		if err := validateTraceFile(*vtrace); err != nil {
			fmt.Fprintf(os.Stderr, "sta: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *netlist == "" || *events == "" {
		flag.Usage()
		os.Exit(2)
	}
	mc, err := parseMCSpec(*mcSamples, *mcSeed, *mcSigma, *mcCorners)
	if err == nil {
		err = flagConflicts(*pulseF, mc, *deltaS, *deltaR, *server, *tracef, *explain)
	}
	if err == nil {
		if *server != "" {
			err = runRemote(*server, *netlist, *events, *mode, *deltaS, *deltaR, mc, *pulseF)
		} else {
			err = run(*netlist, *events, *char, *models, *mode, *full, *loadFF, *reqPS, *workers, *sparse, *tracef, *explain, *deltaS, *deltaR, mc, *pulseF)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sta: %v\n", err)
		os.Exit(1)
	}
}

// flagConflicts validates cross-flag combinations after parsing, each error
// naming the offending flag. -pulse-filter composes with every analysis mode
// (-delta re-judges edited cones under the same filtering, -mc-* reports
// glitch criticality); -trace/-explain are in-process only.
func flagConflicts(pulseFilter bool, mc *mcSpec, deltaSet, deltaRemove, server, tracePath, explainList string) error {
	wantDelta := deltaSet != "" || deltaRemove != ""
	if mc != nil && wantDelta {
		return fmt.Errorf("-mc-samples cannot combine with -delta (a statistical run has no single baseline to edit)")
	}
	if server != "" {
		switch {
		case tracePath != "":
			return fmt.Errorf("-trace runs in-process only (use POST /v1/analyze?trace=1 against the daemon)")
		case explainList != "":
			return fmt.Errorf("-explain runs in-process only (use POST /v1/explain against the daemon)")
		}
	}
	return nil
}

func run(netPath, eventSpec, charList, modelList, mode string, full bool, loadFF, reqPS float64, workers int, sparse bool, tracePath, explainList, deltaSet, deltaRemove string, mc *mcSpec, pulseFilter bool) error {
	lib := sta.NewLibrary()

	// Load pre-characterized models.
	if modelList != "" {
		for _, kv := range strings.Split(modelList, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -model entry %q (want type=file.json)", kv)
			}
			m, err := macromodel.Load(parts[1])
			if err != nil {
				return fmt.Errorf("model %s: %w", parts[0], err)
			}
			lib.Add(parts[0], core.NewCalculator(m))
		}
	}

	// Characterize remaining types.
	if charList != "" {
		for _, name := range strings.Split(charList, ",") {
			name = strings.TrimSpace(name)
			if name == "" || lib.Get(name) != nil {
				continue
			}
			calc, err := characterize(name, full, loadFF, pulseFilter)
			if err != nil {
				return fmt.Errorf("characterize %s: %w", name, err)
			}
			lib.Add(name, calc)
			fmt.Fprintf(os.Stderr, "sta: characterized %s\n", name)
		}
	}

	f, err := os.Open(netPath)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := sta.ParseNetlist(f, lib)
	if err != nil {
		return err
	}
	batch, err := parseBatch(c, eventSpec)
	if err != nil {
		return err
	}

	modes := map[string][]sta.Mode{
		"prox": {sta.Proximity},
		"conv": {sta.Conventional},
		"both": {sta.Conventional, sta.Proximity},
	}[mode]
	if modes == nil {
		return fmt.Errorf("unknown mode %q", mode)
	}
	opt := sta.Options{Workers: workers, Dense: !sparse, PulseFiltering: pulseFilter}
	var tr *obs.Trace
	if tracePath != "" {
		tr = obs.NewTrace()
		opt.Trace = tr
		defer func() {
			if werr := writeTraceFile(tracePath, tr); werr != nil {
				fmt.Fprintf(os.Stderr, "sta: %v\n", werr)
			}
		}()
	}
	var explainNets []string
	if explainList != "" {
		for _, name := range strings.Split(explainList, ",") {
			if name = strings.TrimSpace(name); name != "" {
				explainNets = append(explainNets, name)
			}
		}
	}

	wantDelta := deltaSet != "" || deltaRemove != ""
	if len(batch) > 1 {
		if len(explainNets) > 0 {
			return fmt.Errorf("-explain works on a single stimulus vector (got %d)", len(batch))
		}
		if wantDelta {
			return fmt.Errorf("-delta re-times a single baseline vector (got %d)", len(batch))
		}
		if mc != nil {
			return fmt.Errorf("-mc-samples analyzes a single stimulus vector (got %d)", len(batch))
		}
		return runBatch(c, batch, modes, opt, reqPS)
	}
	if mc != nil {
		return runMC(c, batch[0], modes, opt, mc)
	}
	evs := batch[0]
	var delta sta.Delta
	if wantDelta {
		if delta, err = parseDelta(c, deltaSet, deltaRemove); err != nil {
			return err
		}
	}

	for _, m := range modes {
		res, err := c.AnalyzeOpts(evs, m, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n== %s analysis ==\n", m)
		for _, name := range c.NetsByName() {
			n := c.Net(name)
			for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
				if a, ok := res.Arrival(n, dir); ok {
					fmt.Printf("%-12s %-8v t=%8.1f ps  tt=%7.1f ps\n",
						name, dir, a.Time*1e12, a.TT*1e12)
				}
			}
		}
		for _, po := range c.POs {
			arr, ok := res.Latest(po)
			if !ok {
				continue
			}
			path, err := res.CriticalPath(po, arr.Dir)
			if err != nil {
				return err
			}
			fmt.Printf("critical path to %s (%v @ %.1f ps):", po.Name, arr.Dir, arr.Time*1e12)
			for _, st := range path {
				fmt.Printf(" %s", st.Net.Name)
				if st.Arrival.UsedInputs > 1 {
					fmt.Printf("[prox:%d]", st.Arrival.UsedInputs)
				}
			}
			fmt.Println()
		}
		if reqPS > 0 {
			slack, at, warr, ok := res.WorstSlack(c.POs, reqPS*1e-12)
			if ok {
				status := "MET"
				if slack < 0 {
					status = "VIOLATED"
				}
				fmt.Printf("worst slack vs %.1f ps required: %.1f ps at %s (%v) — %s\n",
					reqPS, slack*1e12, at.Name, warr.Dir, status)
			}
		}
		if len(explainNets) > 0 {
			nes, err := sta.ExplainNets(c, res, explainNets)
			if err != nil {
				return err
			}
			fmt.Printf("\n-- explain (%s) --\n", m)
			for _, ne := range nes {
				ne.Format(os.Stdout)
			}
		}
		printStats(res.Stats)

		if wantDelta {
			dres, err := c.AnalyzeDelta(res, delta, opt)
			if err != nil {
				return err
			}
			fmt.Printf("\n-- %s delta re-timing --\n", m)
			for _, name := range c.NetsByName() {
				n := c.Net(name)
				for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
					da, dok := dres.Arrival(n, dir)
					ba, bok := res.Arrival(n, dir)
					if !dok {
						if bok {
							fmt.Printf("%-12s %-8v gone (was t=%8.1f ps)\n", name, dir, ba.Time*1e12)
						}
						continue
					}
					marker := ""
					if !bok || da != ba {
						marker = "  *"
					}
					fmt.Printf("%-12s %-8v t=%8.1f ps  tt=%7.1f ps%s\n",
						name, dir, da.Time*1e12, da.TT*1e12, marker)
				}
			}
			fmt.Printf("delta: re-evaluated %d gates, reused %d baseline arrivals\n",
				dres.Stats.GatesReevaluated, dres.Stats.GatesReused)
			printStats(dres.Stats)
		}
	}
	return nil
}

// parseDelta parses the -delta / -delta-remove flag syntax against circuit
// nets. Set events use the -event syntax; removes are net:dir pairs.
func parseDelta(c *sta.Circuit, setSpec, removeSpec string) (sta.Delta, error) {
	var delta sta.Delta
	if setSpec != "" {
		evs, err := sta.ParseEvents(c, setSpec)
		if err != nil {
			return sta.Delta{}, fmt.Errorf("-delta: %w", err)
		}
		delta.Set = evs
	}
	for _, part := range strings.Split(removeSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 {
			return sta.Delta{}, fmt.Errorf("-delta-remove: %q: want net:dir", part)
		}
		n := c.Net(fields[0])
		if n == nil {
			return sta.Delta{}, fmt.Errorf("-delta-remove: unknown net %q", fields[0])
		}
		var dir waveform.Direction
		switch fields[1] {
		case "rise", "r":
			dir = waveform.Rising
		case "fall", "f":
			dir = waveform.Falling
		default:
			return sta.Delta{}, fmt.Errorf("-delta-remove: %q: bad direction %q", part, fields[1])
		}
		delta.Remove = append(delta.Remove, sta.DeltaRemove{Net: n, Dir: dir})
	}
	return delta, nil
}

// validateTraceFile checks that a -trace output decodes as the Chrome JSON
// Object Format with well-formed, properly nested events — the structural
// contract chrome://tracing and Perfetto rely on.
func validateTraceFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: trace has no events", path)
	}
	fmt.Printf("%s: valid Chrome trace, %d events\n", path, len(events))
	return nil
}

// writeTraceFile dumps the recorded spans as a Chrome trace_event document.
func writeTraceFile(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sta: wrote %d trace events to %s\n", tr.Len(), path)
	return nil
}

// parseBatch splits a ';'-separated batch-vector spec into independent
// stimulus vectors. Blank segments (a trailing ';', doubled separators) are
// skipped; each non-blank segment must parse as a full event list, with
// errors reporting the vector's position. Vectors are independent, so the
// same primary-input event may appear in any number of segments — only
// duplicates within one segment are rejected (by Analyze).
func parseBatch(c *sta.Circuit, eventSpec string) ([][]sta.PIEvent, error) {
	var batch [][]sta.PIEvent
	for i, vec := range strings.Split(eventSpec, ";") {
		if strings.TrimSpace(vec) == "" {
			continue
		}
		evs, err := sta.ParseEvents(c, vec)
		if err != nil {
			return nil, fmt.Errorf("vector %d: %w", i, err)
		}
		batch = append(batch, evs)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("no stimulus vectors in %q", eventSpec)
	}
	return batch, nil
}

// printStats summarizes what the analysis did and where the time went.
func printStats(s sta.Stats) {
	fmt.Printf("evaluated %d of %d scheduled gates over %d levels (%d proximity, %d single-arc evals), %d workers\n",
		s.GatesEvaluated, s.GatesScheduled, s.Levels, s.ProximityEvals, s.SingleArcEvals, s.Workers)
	if s.PulsesFiltered > 0 || s.PulsesDegraded > 0 || s.PulsesUnjudged > 0 {
		fmt.Printf("pulse filtering: absorbed %d runt pulses, degraded %d, unjudged %d (no glitch model)\n",
			s.PulsesFiltered, s.PulsesDegraded, s.PulsesUnjudged)
	}
	if s.Wall > 0 {
		fmt.Printf("phases:")
		for _, p := range obs.Phases() {
			if d := s.Phases[p]; d > 0 {
				fmt.Printf(" %s=%s", p, d.Round(time.Microsecond))
			}
		}
		fmt.Printf(" wall=%s\n", s.Wall.Round(time.Microsecond))
	}
}

// runBatch analyzes several independent stimulus vectors against one shared
// levelization and prints a compact per-vector summary.
func runBatch(c *sta.Circuit, batch [][]sta.PIEvent, modes []sta.Mode, opt sta.Options, reqPS float64) error {
	for _, m := range modes {
		results, err := c.AnalyzeBatch(batch, m, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\n== %s analysis — %d vectors ==\n", m, len(batch))
		for i, res := range results {
			fmt.Printf("vector %d:", i)
			for _, po := range c.POs {
				if arr, ok := res.Latest(po); ok {
					fmt.Printf(" %s=%v@%.1fps", po.Name, arr.Dir, arr.Time*1e12)
				}
			}
			if reqPS > 0 {
				if slack, _, _, ok := res.WorstSlack(c.POs, reqPS*1e-12); ok {
					fmt.Printf(" slack=%.1fps", slack*1e12)
				}
			}
			fmt.Println()
		}
		if len(results) > 0 {
			printStats(results[0].Stats)
		}
	}
	return nil
}

// characterize builds a calculator for a named gate type (inv, nandN, norN).
// With glitch set, multi-input gates also get Section-6 glitch tables (one
// ordered opposite-edge pair per reference pin) so -pulse-filter has
// inertial-delay data to judge runt pulses against.
func characterize(name string, full bool, loadFF float64, glitch bool) (*core.Calculator, error) {
	var kind cells.Kind
	var n int
	switch {
	case name == "inv":
		kind, n = cells.Inv, 1
	case strings.HasPrefix(name, "nand"):
		kind = cells.Nand
		fmt.Sscanf(strings.TrimPrefix(name, "nand"), "%d", &n)
	case strings.HasPrefix(name, "nor"):
		kind = cells.Nor
		fmt.Sscanf(strings.TrimPrefix(name, "nor"), "%d", &n)
	default:
		return nil, fmt.Errorf("unknown gate type (want inv, nandN, norN)")
	}
	if n < 1 || n > 8 {
		return nil, fmt.Errorf("bad input count %d", n)
	}
	geom := cells.DefaultGeometry()
	geom.CLoad = loadFF * 1e-15
	cell, err := cells.New(kind, n, cells.DefaultProcess(), geom)
	if err != nil {
		return nil, err
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		return nil, err
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	spec := macromodel.CoarseCharSpec()
	if full {
		spec = macromodel.DefaultCharSpec()
	}
	model, err := macromodel.CharacterizeGate(sim, spec)
	if err != nil {
		return nil, err
	}
	if glitch && n >= 2 {
		gspec := macromodel.GlitchGridSpec{
			TausFall: table.LogSpace(50e-12, 2e-9, 2),
			TausRise: table.LogSpace(50e-12, 2e-9, 2),
			Seps:     table.LinSpace(-1e-9, 1.2e-9, 9),
		}
		if full {
			gspec = macromodel.DefaultGlitchGrid()
		}
		for ref := 0; ref < n; ref++ {
			gm, err := sim.CharacterizeGlitch(ref, (ref+1)%n, gspec)
			if err != nil {
				return nil, fmt.Errorf("glitch pair (fall %d, rise %d): %w", ref, (ref+1)%n, err)
			}
			model.Glitches = append(model.Glitches, gm)
		}
	}
	calc := core.NewCalculator(model)
	if n >= 2 {
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			return nil, err
		}
	}
	return calc, nil
}
