package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/service"
)

// cliTraceContext mints one W3C trace context per CLI run, lazily on the
// first daemon request. Every request the run makes (upload, baseline,
// delta, each batch) carries the same trace id, so the whole run shows up
// as one distributed trace in the daemon's flight recorder — and the user
// can pull every server-side record with a single id.
var cliTraceContext = sync.OnceValue(obs.NewTraceContext)

// runRemote ships the analysis to a stad daemon: upload the netlist once,
// push every stimulus vector through /v1/analyze:batch, print the per-vector
// primary-output arrivals. The daemon's model registry supplies the cell
// models, so no characterization happens client-side.
func runRemote(baseURL, netPath, eventSpec, mode, deltaSet, deltaRemove string, mc *mcSpec, pulseFilter bool) error {
	text, err := os.ReadFile(netPath)
	if err != nil {
		return err
	}
	vectors, err := parseWireBatch(eventSpec)
	if err != nil {
		return err
	}
	wantDelta := deltaSet != "" || deltaRemove != ""
	if wantDelta && len(vectors) > 1 {
		return fmt.Errorf("-delta re-times a single baseline vector (got %d)", len(vectors))
	}
	if mc != nil && len(vectors) > 1 {
		return fmt.Errorf("-mc-samples analyzes a single stimulus vector (got %d)", len(vectors))
	}
	var set []service.Event
	var remove []service.RemoveEvent
	if wantDelta {
		if set, remove, err = parseWireDelta(deltaSet, deltaRemove); err != nil {
			return err
		}
	}
	modes := map[string][]string{
		"prox": {"prox"},
		"conv": {"conv"},
		"both": {"conv", "prox"},
	}[mode]
	if modes == nil {
		return fmt.Errorf("unknown mode %q", mode)
	}

	base := strings.TrimRight(baseURL, "/")
	var up service.UploadResponse
	if err := postJSON(base+"/v1/netlists", service.UploadRequest{Netlist: string(text)}, &up); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Fprintf(os.Stderr, "sta: uploaded %s as %s (%d gates, %d levels)\n",
		netPath, up.ID, up.Gates, up.Levels)
	fmt.Fprintf(os.Stderr, "sta: trace id %s (query the daemon's /v1/debug/requests for this run's records)\n",
		cliTraceContext().TraceID)

	if mc != nil {
		return runRemoteMC(base, up.ID, vectors[0], modes, mc, pulseFilter)
	}
	for _, m := range modes {
		if wantDelta {
			// Baseline once with keepBaseline, then the edit through the
			// delta endpoint — the daemon reuses everything the edit does
			// not touch. The delta's mode AND filtering are the baseline's,
			// so pulseFilter rides along on both requests.
			var ar service.AnalyzeResponse
			areq := service.AnalyzeRequest{Netlist: up.ID, Mode: m, Vector: vectors[0],
				KeepBaseline: true, PulseFilter: pulseFilter}
			if err := postJSON(base+"/v1/analyze", areq, &ar); err != nil {
				return fmt.Errorf("baseline analyze (%s): %w", m, err)
			}
			var dr service.DeltaResponse
			dreq := service.DeltaRequest{Netlist: up.ID, Baseline: ar.BaselineID,
				Set: set, Remove: remove, PulseFilter: pulseFilter}
			if err := postJSON(base+"/v1/analyze:delta", dreq, &dr); err != nil {
				return fmt.Errorf("delta (%s): %w", m, err)
			}
			fmt.Printf("\n== %s delta re-timing @ %s (baseline %s) ==\n", dr.Mode, base, ar.BaselineID)
			fmt.Printf("edited:")
			for _, a := range dr.Arrivals {
				fmt.Printf(" %s=%s@%.1fps", a.Net, a.Dir, a.TimePs)
			}
			fmt.Println()
			fmt.Printf("delta: re-evaluated %d gates, reused %d baseline arrivals server-side\n",
				dr.GatesReevaluated, dr.GatesReused)
			if dr.PulsesFiltered > 0 || dr.PulsesDegraded > 0 || dr.PulsesUnjudged > 0 {
				fmt.Printf("pulse filtering: absorbed %d runt pulses, degraded %d, unjudged %d server-side\n",
					dr.PulsesFiltered, dr.PulsesDegraded, dr.PulsesUnjudged)
			}
			continue
		}
		var resp service.BatchResponse
		req := service.BatchRequest{Netlist: up.ID, Mode: m, Vectors: vectors, PulseFilter: pulseFilter}
		if err := postJSON(base+"/v1/analyze:batch", req, &resp); err != nil {
			return fmt.Errorf("analyze (%s): %w", m, err)
		}
		fmt.Printf("\n== %s analysis @ %s — %d vectors ==\n", resp.Mode, base, len(resp.Results))
		for i, vr := range resp.Results {
			fmt.Printf("vector %d:", i)
			for _, a := range vr.Arrivals {
				fmt.Printf(" %s=%s@%.1fps", a.Net, a.Dir, a.TimePs)
			}
			fmt.Println()
		}
		if len(resp.Results) > 0 {
			gates, prox, filtered, degraded := 0, 0, 0, 0
			for _, vr := range resp.Results {
				gates += vr.GatesEvaluated
				prox += vr.ProximityEvals
				filtered += vr.PulsesFiltered
				degraded += vr.PulsesDegraded
			}
			fmt.Printf("evaluated %d gates total (%d proximity evals) server-side\n", gates, prox)
			if filtered > 0 || degraded > 0 {
				fmt.Printf("pulse filtering: absorbed %d runt pulses, degraded %d server-side\n", filtered, degraded)
			}
		}
	}
	return nil
}

// parseWireBatch parses the CLI event syntax (net:dir:tt_ps:time_ps, ','
// between events, ';' between vectors) into wire events — syntactic only;
// net names are validated by the server against the uploaded netlist.
func parseWireBatch(eventSpec string) ([][]service.Event, error) {
	var vectors [][]service.Event
	for i, vec := range strings.Split(eventSpec, ";") {
		if strings.TrimSpace(vec) == "" {
			continue
		}
		var events []service.Event
		for _, part := range strings.Split(vec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			fields := strings.Split(part, ":")
			if len(fields) != 4 {
				return nil, fmt.Errorf("vector %d: event %q: want net:dir:tt_ps:time_ps", i, part)
			}
			switch fields[1] {
			case "rise", "r", "fall", "f":
			default:
				return nil, fmt.Errorf("vector %d: event %q: bad direction %q", i, part, fields[1])
			}
			tt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || tt <= 0 {
				return nil, fmt.Errorf("vector %d: event %q: bad transition time %q", i, part, fields[2])
			}
			at, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("vector %d: event %q: bad time %q", i, part, fields[3])
			}
			events = append(events, service.Event{Net: fields[0], Dir: fields[1], TTPs: tt, TimePs: at})
		}
		if len(events) == 0 {
			return nil, fmt.Errorf("vector %d: no events", i)
		}
		vectors = append(vectors, events)
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("no stimulus vectors in %q", eventSpec)
	}
	return vectors, nil
}

// parseWireDelta parses -delta (full -event syntax) and -delta-remove
// (net:dir pairs) into wire events — syntactic only; the server validates
// net names and PI membership against the baseline's netlist.
func parseWireDelta(setSpec, removeSpec string) ([]service.Event, []service.RemoveEvent, error) {
	var set []service.Event
	if setSpec != "" {
		vecs, err := parseWireBatch(setSpec)
		if err != nil {
			return nil, nil, fmt.Errorf("-delta: %w", err)
		}
		if len(vecs) != 1 {
			return nil, nil, fmt.Errorf("-delta: want one event list, got %d", len(vecs))
		}
		set = vecs[0]
	}
	var remove []service.RemoveEvent
	for _, part := range strings.Split(removeSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("-delta-remove: %q: want net:dir", part)
		}
		switch fields[1] {
		case "rise", "r", "fall", "f":
		default:
			return nil, nil, fmt.Errorf("-delta-remove: %q: bad direction %q", part, fields[1])
		}
		remove = append(remove, service.RemoveEvent{Net: fields[0], Dir: fields[1]})
	}
	return set, remove, nil
}

func postJSON(url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", cliTraceContext().Header())
	r, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var er service.ErrorResponse
		json.NewDecoder(r.Body).Decode(&er)
		return fmt.Errorf("%s: status %d: %s", url, r.StatusCode, er.Error)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
