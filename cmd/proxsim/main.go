// Command proxsim runs the built-in transistor-level simulator on a library
// cell with piecewise-linear input stimuli and writes the node waveforms as
// CSV, plus delay/transition measurements to stderr.
//
// Examples:
//
//	proxsim -gate nand3 -stim a:fall:500:0,b:fall:100:120 -o waves.csv
//	proxsim -gate nor2 -stim a:rise:300:0,b:rise:300:50
//
// Stimulus syntax: pin:dir:tt_ps:cross_ps where pin is a letter, dir is
// rise|fall, tt_ps the full-swing ramp duration and cross_ps the time the
// ramp crosses its measurement threshold.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cells"
	"repro/internal/circuit"
	"repro/internal/deck"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

func main() {
	var (
		gateName = flag.String("gate", "nand3", "cell: inv, nand2..nand4, nor2..nor4")
		stims    = flag.String("stim", "a:fall:500:0", "comma-separated pin:dir:tt_ps:cross_ps stimuli")
		out      = flag.String("o", "", "CSV output file (default stdout)")
		load     = flag.Float64("cl", 100, "output load in fF")
		deckPath = flag.String("deck", "", "simulate a SPICE-flavored deck instead of a library cell")
	)
	flag.Parse()

	var err error
	if *deckPath != "" {
		err = runDeck(*deckPath, *out)
	} else {
		err = run(*gateName, *stims, *out, *load)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxsim: %v\n", err)
		os.Exit(1)
	}
}

// runDeck parses and simulates a text deck, dumping every node voltage.
func runDeck(path, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := deck.Parse(f)
	if err != nil {
		return err
	}
	if d.TranStop <= 0 {
		return fmt.Errorf("deck has no .tran directive")
	}
	eng, err := spice.New(d.Circuit, spice.DefaultOptions())
	if err != nil {
		return err
	}
	res, err := eng.Transient(spice.TranSpec{Stop: d.TranStop, Breakpoints: d.Breakpoints})
	if err != nil {
		return err
	}

	w := os.Stdout
	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		w = out
	}
	ckt := d.Circuit
	fmt.Fprintf(w, "t_ps")
	for id := 1; id < ckt.NumNodes(); id++ {
		fmt.Fprintf(w, ",%s_V", ckt.NodeName(circuit.NodeID(id)))
	}
	fmt.Fprintln(w)
	for i, t := range res.Time {
		fmt.Fprintf(w, "%.3f", t*1e12)
		for id := 1; id < ckt.NumNodes(); id++ {
			fmt.Fprintf(w, ",%.5f", res.V[id][i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ParseGate resolves names like "nand3" into a cell kind and input count.
func ParseGate(name string) (cells.Kind, int, error) {
	switch {
	case name == "inv":
		return cells.Inv, 1, nil
	case strings.HasPrefix(name, "nand"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "nand"))
		if err != nil || n < 2 {
			return 0, 0, fmt.Errorf("bad gate name %q", name)
		}
		return cells.Nand, n, nil
	case strings.HasPrefix(name, "nor"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "nor"))
		if err != nil || n < 2 {
			return 0, 0, fmt.Errorf("bad gate name %q", name)
		}
		return cells.Nor, n, nil
	}
	return 0, 0, fmt.Errorf("unknown gate %q (want inv, nandN, norN)", name)
}

// ParseStims parses the -stim flag.
func ParseStims(s string, numPins int) ([]macromodel.PinStim, error) {
	var out []macromodel.PinStim
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("stimulus %q: want pin:dir:tt_ps:cross_ps", part)
		}
		if len(fields[0]) != 1 || fields[0][0] < 'a' || fields[0][0] > 'z' {
			return nil, fmt.Errorf("stimulus %q: bad pin %q", part, fields[0])
		}
		pin := int(fields[0][0] - 'a')
		if pin >= numPins {
			return nil, fmt.Errorf("stimulus %q: pin %q out of range for %d-input gate", part, fields[0], numPins)
		}
		var dir waveform.Direction
		switch fields[1] {
		case "rise", "r":
			dir = waveform.Rising
		case "fall", "f":
			dir = waveform.Falling
		default:
			return nil, fmt.Errorf("stimulus %q: bad direction %q", part, fields[1])
		}
		tt, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || tt <= 0 {
			return nil, fmt.Errorf("stimulus %q: bad transition time %q", part, fields[2])
		}
		cross, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("stimulus %q: bad crossing time %q", part, fields[3])
		}
		out = append(out, macromodel.PinStim{Pin: pin, Dir: dir, TT: tt * 1e-12, Cross: cross * 1e-12})
	}
	return out, nil
}

func run(gateName, stimSpec, outPath string, loadFF float64) error {
	kind, n, err := ParseGate(gateName)
	if err != nil {
		return err
	}
	geom := cells.DefaultGeometry()
	geom.CLoad = loadFF * 1e-15
	cell, err := cells.New(kind, n, cells.DefaultProcess(), geom)
	if err != nil {
		return err
	}
	stims, err := ParseStims(stimSpec, n)
	if err != nil {
		return err
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
	if err != nil {
		return fmt.Errorf("thresholds: %w", err)
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	res, err := sim.Run(stims)
	if err != nil {
		return err
	}

	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	// CSV: time plus the output and every stimulated input (shifted frame).
	fmt.Fprintf(w, "t_ps,out_V")
	for _, st := range stims {
		fmt.Fprintf(w, ",%c_V", 'a'+st.Pin)
	}
	fmt.Fprintln(w)
	for i, t := range res.Out.T {
		fmt.Fprintf(w, "%.3f,%.5f", t*1e12, res.Out.V[i])
		for k := range stims {
			fmt.Fprintf(w, ",%.5f", res.PWLs[k].Eval(t))
		}
		fmt.Fprintln(w)
	}

	// Measurements to stderr so the CSV stays clean.
	fmt.Fprintf(os.Stderr, "thresholds: Vil=%.3f Vih=%.3f\n", fam.Thresholds.Vil, fam.Thresholds.Vih)
	for k, st := range stims {
		if d, err := res.DelayFrom(k); err == nil {
			fmt.Fprintf(os.Stderr, "delay from %c: %.1f ps\n", 'a'+st.Pin, d*1e12)
		}
	}
	if tt, err := res.OutputTT(); err == nil {
		fmt.Fprintf(os.Stderr, "output transition time: %.1f ps (%v)\n", tt*1e12, res.OutDir)
	}
	return nil
}
