package main

import (
	"testing"

	"repro/internal/cells"
	"repro/internal/waveform"
)

func TestParseGate(t *testing.T) {
	cases := []struct {
		in   string
		kind cells.Kind
		n    int
		ok   bool
	}{
		{"inv", cells.Inv, 1, true},
		{"nand2", cells.Nand, 2, true},
		{"nand4", cells.Nand, 4, true},
		{"nor3", cells.Nor, 3, true},
		{"nand1", 0, 0, false},
		{"xor2", 0, 0, false},
		{"nandx", 0, 0, false},
	}
	for _, c := range cases {
		kind, n, err := ParseGate(c.in)
		if c.ok && (err != nil || kind != c.kind || n != c.n) {
			t.Errorf("ParseGate(%q) = %v,%d,%v", c.in, kind, n, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseGate(%q) accepted", c.in)
		}
	}
}

func TestParseStims(t *testing.T) {
	stims, err := ParseStims("a:fall:500:0, b:r:100:120", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stims) != 2 {
		t.Fatalf("parsed %d stims", len(stims))
	}
	if stims[0].Pin != 0 || stims[0].Dir != waveform.Falling || stims[0].TT != 500e-12 {
		t.Errorf("stim 0 = %+v", stims[0])
	}
	if stims[1].Pin != 1 || stims[1].Dir != waveform.Rising || stims[1].Cross != 120e-12 {
		t.Errorf("stim 1 = %+v", stims[1])
	}
}

func TestParseStimsErrors(t *testing.T) {
	for name, in := range map[string]string{
		"short":        "a:fall:500",
		"bad pin":      "9:fall:500:0",
		"out of range": "d:fall:500:0",
		"bad dir":      "a:x:500:0",
		"bad tt":       "a:fall:x:0",
		"zero tt":      "a:fall:0:0",
		"bad cross":    "a:fall:500:x",
	} {
		if _, err := ParseStims(in, 3); err == nil {
			t.Errorf("%s: ParseStims(%q) accepted", name, in)
		}
	}
}
