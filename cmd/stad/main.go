// Command stad is the proximity-delay timing-analysis daemon: an HTTP/JSON
// server over characterized cell libraries (charz JSON files) and the
// levelized parallel STA engine.
//
//	stad -lib ./models -addr :8080
//
// Endpoints:
//
//	POST /v1/netlists       upload + levelize a netlist, returns a handle
//	POST /v1/analyze        run one stimulus vector (?trace=1 returns a
//	                        Chrome trace_event document inline)
//	POST /v1/analyze:batch  fan a vector set through the batch engine
//	POST /v1/analyze:delta  re-time a kept baseline under a stimulus edit
//	                        (analyze with keepBaseline:true returns the
//	                        baselineId; -max-baselines bounds the cache)
//	POST /v1/explain        per-net proximity decision traces
//	GET  /healthz           liveness + cache/admission/flight occupancy
//	GET  /metrics           counters, cache stats, latency + phase
//	                        histograms (?format=prom for Prometheus text)
//	GET  /v1/debug/requests       the flight recorder: one wide event per
//	                              recent request (filters: slowest=N,
//	                              status=, endpoint=, since=)
//	GET  /v1/debug/requests/{id}  one request's full record + its retained
//	                              engine trace, when tail sampling kept one
//
// Every request carries a W3C traceparent (honored or minted, echoed in the
// response) alongside X-Request-Id; engine spans are recorded for every
// request and the Chrome trace artifact is retained when the request was
// slow (-tail-threshold), errored, or asked ?trace=1. -wide-log appends one
// JSON line per request; -top renders a live terminal dashboard by polling
// a running daemon.
//
// With -ops 127.0.0.1:6060 a second listener serves net/http/pprof under
// /debug/pprof/ plus /metrics and /healthz, so profiling and scraping stay
// off the service port. Requests are logged structurally (one line per
// request with id, endpoint, status, duration) to stderr.
//
// The server drains gracefully on SIGTERM/SIGINT: in-flight analyses finish
// (bounded by -drain), new connections are refused, and the shutdown logs
// report how many requests were in flight and how long the drain took.
//
// Benchmark mode (-bench N) serves a synthetic netlist and library from a
// temp directory, pushes N vectors through the batch endpoint over real
// HTTP, and writes throughput plus cache stats to -bench-out — the
// repository's service performance record.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/macromodel"
	"repro/internal/service"
	"repro/internal/sta"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		lib         = flag.String("lib", ".", "model library directory (charz JSON files)")
		cacheSize   = flag.Int("cache", 32, "model cache capacity (cells)")
		workers     = flag.Int("workers", 0, "analysis workers (0 = one per CPU)")
		sparse      = flag.Bool("sparse", true, "cone-pruned sparse scheduling (false = dense full-schedule walk; results are identical)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request analysis budget")
		maxInflight = flag.Int("max-inflight", 64, "admitted concurrent requests; beyond it requests get 429")
		maxNetlists = flag.Int("max-netlists", 64, "resident compiled netlists (LRU beyond)")
		maxBase     = flag.Int("max-baselines", 128, "resident delta baselines across all netlists (LRU beyond)")
		drain       = flag.Duration("drain", 15*time.Second, "graceful shutdown budget on SIGTERM")
		opsAddr     = flag.String("ops", "", "ops listener address (pprof + metrics; keep off the service port and firewalled), e.g. 127.0.0.1:6060")

		flightSize = flag.Int("flight", 0, "flight-recorder ring capacity in wide events (0 = 1024; negative disables the recorder, per-request span recording, and the /v1/debug surface)")
		tailThresh = flag.Duration("tail-threshold", 0, "retain a request's full engine trace when it ran at least this long (0 = 250ms; negative retains only errored or ?trace=1 requests)")
		maxTraces  = flag.Int("max-retained-traces", 32, "tail-sampled Chrome trace artifacts kept (FIFO beyond)")
		traceCap   = flag.Int("trace-event-cap", 0, "span events recorded per request before dropping (0 = 8192; negative = unlimited)")
		wideLog    = flag.String("wide-log", "", "append one JSON line per request (the full wide event) to this file")

		top         = flag.String("top", "", "live terminal view: poll a running stad at this base URL (e.g. http://127.0.0.1:8080) instead of serving")
		topInterval = flag.Duration("top-interval", time.Second, "refresh period for -top")

		bench        = flag.Int("bench", 0, "benchmark mode: push N vectors through a synthetic service and exit")
		benchGates   = flag.Int("bench-gates", 4000, "benchmark netlist size (gates)")
		benchClients = flag.Int("bench-clients", 8, "benchmark concurrent clients")
		benchBatch   = flag.Int("bench-batch", 32, "vectors per batch request")
		benchOut     = flag.String("bench-out", "BENCH_service.json", "benchmark result file")
	)
	flag.Parse()

	if *top != "" {
		if err := runTop(*top, *topInterval); err != nil {
			fmt.Fprintf(os.Stderr, "stad: top: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := service.Config{
		Workers:            *workers,
		Dense:              !*sparse,
		MaxInflight:        *maxInflight,
		RequestTimeout:     *timeout,
		MaxNetlists:        *maxNetlists,
		MaxBaselines:       *maxBase,
		FlightRecorderSize: *flightSize,
		TailThreshold:      *tailThresh,
		MaxRetainedTraces:  *maxTraces,
		TraceEventCap:      *traceCap,
	}
	if *wideLog != "" {
		f, err := os.OpenFile(*wideLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stad: wide-log: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.WideLog = f
	}
	if *bench > 0 {
		if err := runBench(cfg, *bench, *benchGates, *benchClients, *benchBatch, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "stad: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	cfg.Registry = service.NewRegistry(*lib, *cacheSize)
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := serve(*addr, *opsAddr, cfg, *drain, logger); err != nil {
		fmt.Fprintf(os.Stderr, "stad: %v\n", err)
		os.Exit(1)
	}
}

// serve binds the listeners and runs the daemon until SIGTERM/SIGINT, then
// drains.
func serve(addr, opsAddr string, cfg service.Config, drain time.Duration, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var opsLn net.Listener
	if opsAddr != "" {
		if opsLn, err = net.Listen("tcp", opsAddr); err != nil {
			ln.Close()
			return fmt.Errorf("ops listener: %w", err)
		}
	}
	return serveListeners(ln, opsLn, cfg, drain, logger)
}

// serveListeners runs the service on ln (and the ops endpoints on opsLn if
// non-nil) until SIGTERM/SIGINT, then drains in-flight requests within the
// drain budget, logging what the shutdown actually waited for. Split from
// serve so tests can drive it on ephemeral ports and signal it directly.
func serveListeners(ln, opsLn net.Listener, cfg service.Config, drain time.Duration, logger *slog.Logger) error {
	cfg.Logger = logger
	svc := service.New(cfg)
	srv := &http.Server{
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if opsLn != nil {
		opsSrv := &http.Server{Handler: opsHandler(svc), ReadHeaderTimeout: 10 * time.Second}
		go opsSrv.Serve(opsLn)
		defer opsSrv.Close()
		logger.Info("ops listening", "addr", opsLn.Addr().String())
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	bi := service.ReadBuildInfo()
	logger.Info("build", "version", bi.Version, "goVersion", bi.GoVersion, "gomaxprocs", bi.GOMAXPROCS)
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", cfg.Workers, "dense", cfg.Dense, "maxInflight", cfg.MaxInflight)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	inFlight := svc.InFlight()
	logger.Info("shutdown signal received, draining",
		"inFlight", inFlight, "budget", drain.String())
	start := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Error("drain failed", "after", time.Since(start).String(), "err", err.Error())
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("drained", "drainDur", time.Since(start).String(), "inFlightAtSignal", inFlight)
	return nil
}

// opsHandler is the operational mux: pprof for profiling a live daemon plus
// the same health and metrics endpoints the service port carries, so a
// scraper can stay entirely on the (firewalled) ops port.
func opsHandler(svc *service.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", svc)
	mux.Handle("/healthz", svc)
	return mux
}

// benchResult is the BENCH_service.json schema — one record per run so the
// perf trajectory can be compared across PRs.
type benchResult struct {
	Timestamp     string  `json:"timestamp"`
	NetlistGates  int     `json:"netlistGates"`
	NetlistLevels int     `json:"netlistLevels"`
	Vectors       int     `json:"vectors"`
	Clients       int     `json:"clients"`
	BatchSize     int     `json:"batchSize"`
	WallSec       float64 `json:"wallSec"`
	VectorsPerSec float64 `json:"vectorsPerSec"`
	GatesPerSec   float64 `json:"gateEvalsPerSec"`

	CacheHits    int64   `json:"cacheHits"`
	CacheMisses  int64   `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`

	GatesEvaluated int64 `json:"gatesEvaluated"`
	ProximityEvals int64 `json:"proximityEvals"`
}

// runBench measures end-to-end service throughput: synthetic library on
// disk (loaded through the real registry), synthetic netlist uploaded over
// real HTTP, vectors pushed through /v1/analyze:batch by concurrent
// clients.
func runBench(cfg service.Config, vectors, gates, clients, batchSize int, outPath string) error {
	dir, err := os.MkdirTemp("", "stad-bench-lib")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for _, cell := range []struct {
		name string
		kind string
		n    int
	}{{"inv", "inv", 1}, {"nand2", "nand", 2}, {"nand3", "nand", 3}} {
		if err := macromodel.SynthModel(cell.kind, cell.n).Save(filepath.Join(dir, cell.name+".json")); err != nil {
			return err
		}
	}
	cfg.Registry = service.NewRegistry(dir, 8)
	if cfg.MaxInflight < clients {
		cfg.MaxInflight = clients
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.New(cfg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	circuit, err := sta.SynthRandom(64, gates, 42)
	if err != nil {
		return err
	}
	var netText strings.Builder
	if err := sta.WriteNetlist(&netText, circuit); err != nil {
		return err
	}
	// One upload per client, as independent sessions would: the first load
	// of each cell model is a cache miss, every later upload hits — the
	// amortization the registry exists for.
	var up service.UploadResponse
	for c := 0; c < clients; c++ {
		if err := postJSON(base+"/v1/netlists", service.UploadRequest{Netlist: netText.String()}, &up); err != nil {
			return fmt.Errorf("upload: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "stad: bench netlist %s: %d gates, %d levels\n", up.ID, up.Gates, up.Levels)

	// Pre-build the request bodies so the measured loop is pure service
	// traffic. Vector i differs from vector j only in arrival times.
	makeBatch := func(seed int) []byte {
		vecs := make([][]service.Event, 0, batchSize)
		for v := 0; v < batchSize; v++ {
			events := sta.SynthEvents(circuit, int64(seed*batchSize+v))
			vec := make([]service.Event, len(events))
			for k, ev := range events {
				dir := "rise"
				if ev.Dir.String() == "falling" {
					dir = "fall"
				}
				vec[k] = service.Event{Net: ev.Net.Name, Dir: dir, TTPs: ev.TT * 1e12, TimePs: ev.Time * 1e12}
			}
			vecs = append(vecs, vec)
		}
		body, _ := json.Marshal(service.BatchRequest{Netlist: up.ID, Vectors: vecs})
		return body
	}
	nBatches := (vectors + batchSize - 1) / batchSize
	bodies := make([][]byte, nBatches)
	for i := range bodies {
		bodies[i] = makeBatch(i)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				var resp service.BatchResponse
				if err := postBytes(base+"/v1/analyze:batch", bodies[i], &resp); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	for i := 0; i < nBatches; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	wall := time.Since(start)

	var metrics struct {
		Vectors        int64 `json:"vectors"`
		GatesEvaluated int64 `json:"gatesEvaluated"`
		ProximityEvals int64 `json:"proximityEvals"`
		ModelCache     struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"modelCache"`
	}
	if err := getJSON(base+"/metrics", &metrics); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}

	done := nBatches * batchSize
	res := benchResult{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		NetlistGates:   up.Gates,
		NetlistLevels:  up.Levels,
		Vectors:        done,
		Clients:        clients,
		BatchSize:      batchSize,
		WallSec:        wall.Seconds(),
		VectorsPerSec:  float64(done) / wall.Seconds(),
		GatesPerSec:    float64(metrics.GatesEvaluated) / wall.Seconds(),
		CacheHits:      metrics.ModelCache.Hits,
		CacheMisses:    metrics.ModelCache.Misses,
		GatesEvaluated: metrics.GatesEvaluated,
		ProximityEvals: metrics.ProximityEvals,
	}
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(total)
	}
	data, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stad: bench: %d vectors in %.2fs = %.0f vectors/s (%.2e gate evals/s, cache hit rate %.2f)\n",
		done, res.WallSec, res.VectorsPerSec, res.GatesPerSec, res.CacheHitRate)
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func postJSON(url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return postBytes(url, body, resp)
}

func postBytes(url string, body []byte, resp any) error {
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var er service.ErrorResponse
		json.NewDecoder(r.Body).Decode(&er)
		return fmt.Errorf("%s: status %d: %s", url, r.StatusCode, er.Error)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func getJSON(url string, resp any) error {
	r, err := http.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, r.StatusCode)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
