// The stad -top live terminal view: a zero-dependency dashboard over a
// running daemon, polling /metrics, /healthz and the flight-recorder debug
// surface and redrawing in place. It is a read-only client — everything it
// shows is served by endpoints any operator could curl; -top just makes the
// polling loop and the layout someone else's problem.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/stats"
)

// topLatency mirrors one endpoint's histogram summary from /metrics JSON.
type topLatency struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// topMetrics is the subset of the /metrics document -top renders.
type topMetrics struct {
	Requests  map[string]int64      `json:"requests"`
	Status2xx int64                 `json:"status2xx"`
	Status4xx int64                 `json:"status4xx"`
	Status5xx int64                 `json:"status5xx"`
	Canceled  int64                 `json:"statusCanceled"`
	Latencies map[string]topLatency `json:"latencies"`
}

// topHealth is the subset of /healthz -top renders.
type topHealth struct {
	InFlight       int `json:"inFlight"`
	MaxInflight    int `json:"maxInflight"`
	FlightEvents   int `json:"flightEvents"`
	FlightCap      int `json:"flightCap"`
	RetainedTraces int `json:"retainedTraces"`
	MaxRetained    int `json:"maxRetainedTraces"`
}

// topWideEvent is the slice of a wide event the error strip needs.
type topWideEvent struct {
	ID       string    `json:"id"`
	Endpoint string    `json:"endpoint"`
	Status   int       `json:"status"`
	Start    time.Time `json:"start"`
	WallMs   float64   `json:"wallMs"`
	Error    string    `json:"error"`
}

type topDebugList struct {
	Requests []topWideEvent `json:"requests"`
}

// qpsHistoryLen bounds the sparkline history (one sample per refresh).
const qpsHistoryLen = 48

// runTop polls the daemon at base every interval and redraws until
// interrupted. Errors reaching the daemon are drawn, not fatal — the view
// outliving a daemon restart is the point of a dashboard.
func runTop(base string, interval time.Duration) error {
	base = strings.TrimRight(base, "/")
	if interval <= 0 {
		interval = time.Second
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var (
		prev     map[string]int64
		prevAt   time.Time
		history  []float64
		firstErr string
	)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		var m topMetrics
		var h topHealth
		var dbg topDebugList
		firstErr = ""
		if err := getJSON(base+"/metrics", &m); err != nil {
			firstErr = fmt.Sprintf("metrics: %v", err)
		}
		if err := getJSON(base+"/healthz", &h); err != nil && firstErr == "" {
			firstErr = fmt.Sprintf("healthz: %v", err)
		}
		// Flight recorder may be disabled server-side; the view degrades to
		// metrics-only rather than erroring out.
		getJSON(base+"/v1/debug/requests?limit=100", &dbg)

		now := time.Now()
		qps := map[string]float64{}
		var totalQPS float64
		if prev != nil {
			dt := now.Sub(prevAt).Seconds()
			if dt > 0 {
				for ep, n := range m.Requests {
					if d := n - prev[ep]; d > 0 {
						qps[ep] = float64(d) / dt
						totalQPS += float64(d) / dt
					}
				}
			}
		}
		prev = m.Requests
		prevAt = now
		history = append(history, totalQPS)
		if len(history) > qpsHistoryLen {
			history = history[len(history)-qpsHistoryLen:]
		}

		drawTop(base, now, m, h, dbg, qps, totalQPS, history, firstErr)

		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-ticker.C:
		}
	}
}

// drawTop renders one frame: clear screen, header, per-endpoint table,
// recent errors.
func drawTop(base string, now time.Time, m topMetrics, h topHealth, dbg topDebugList,
	qps map[string]float64, totalQPS float64, history []float64, errLine string) {
	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // home + clear
	fmt.Fprintf(&b, "stad -top  %s  %s\n", base, now.Format("15:04:05"))
	if errLine != "" {
		fmt.Fprintf(&b, "!! %s\n", errLine)
	}
	fmt.Fprintf(&b, "in-flight %d/%d   flight ring %d/%d   retained traces %d/%d\n",
		h.InFlight, h.MaxInflight, h.FlightEvents, h.FlightCap, h.RetainedTraces, h.MaxRetained)
	fmt.Fprintf(&b, "responses 2xx %d  4xx %d  5xx %d  499 %d\n",
		m.Status2xx, m.Status4xx, m.Status5xx, m.Canceled)
	fmt.Fprintf(&b, "qps %7.1f  %s\n\n", totalQPS, stats.Sparkline(history))

	fmt.Fprintf(&b, "%-16s %10s %8s %9s %9s %9s\n", "ENDPOINT", "COUNT", "QPS", "P50ms", "P95ms", "P99ms")
	eps := make([]string, 0, len(m.Latencies))
	for ep := range m.Latencies {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		l := m.Latencies[ep]
		fmt.Fprintf(&b, "%-16s %10d %8.1f %9.2f %9.2f %9.2f\n",
			ep, l.Count, qps[ep], l.P50Ms, l.P95Ms, l.P99Ms)
	}

	var errs []topWideEvent
	for _, ev := range dbg.Requests { // newest first already
		if ev.Status >= 400 {
			errs = append(errs, ev)
			if len(errs) == 5 {
				break
			}
		}
	}
	if len(errs) > 0 {
		b.WriteString("\nRECENT ERRORS\n")
		for _, ev := range errs {
			msg := strings.TrimSpace(ev.Error)
			if len(msg) > 64 {
				msg = msg[:64] + "…"
			}
			fmt.Fprintf(&b, "%s  %-20s %-14s %3d  %6.1fms  %s\n",
				ev.Start.Format("15:04:05"), ev.ID, ev.Endpoint, ev.Status, ev.WallMs, msg)
		}
	}
	os.Stdout.WriteString(b.String())
}
