package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/macromodel"
	"repro/internal/service"
	"repro/internal/sta"
)

// syncBuffer guards the log buffer: serveListeners logs from several
// goroutines while the test reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs serveListeners on ephemeral ports with a synthetic
// library, returning the base URLs, the log buffer, and the exit channel.
func startDaemon(t *testing.T, withOps bool) (base, opsBase string, logs *syncBuffer, done chan error) {
	t.Helper()
	dir := t.TempDir()
	for _, cell := range []struct {
		name, kind string
		n          int
	}{{"inv", "inv", 1}, {"nand2", "nand", 2}, {"nand3", "nand", 3}} {
		if err := macromodel.SynthModel(cell.kind, cell.n).Save(filepath.Join(dir, cell.name+".json")); err != nil {
			t.Fatal(err)
		}
	}
	cfg := service.Config{Registry: service.NewRegistry(dir, 8), Workers: 2}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var opsLn net.Listener
	if withOps {
		if opsLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		opsBase = "http://" + opsLn.Addr().String()
	}
	logs = &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(logs, nil))
	done = make(chan error, 1)
	go func() { done <- serveListeners(ln, opsLn, cfg, 10*time.Second, logger) }()
	base = "http://" + ln.Addr().String()

	// Wait until the service answers — by then the signal handler inside
	// serveListeners is installed too (registered before the listener goroutine).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, opsBase, logs, done
}

// uploadDrainNetlist uploads a synthetic netlist big enough that a batch
// takes observable wall time.
func uploadDrainNetlist(t *testing.T, base string, gates int) (service.UploadResponse, *sta.Circuit) {
	t.Helper()
	circuit, err := sta.SynthRandom(32, gates, 7)
	if err != nil {
		t.Fatal(err)
	}
	var netText strings.Builder
	if err := sta.WriteNetlist(&netText, circuit); err != nil {
		t.Fatal(err)
	}
	var up service.UploadResponse
	if err := postJSON(base+"/v1/netlists", service.UploadRequest{Netlist: netText.String()}, &up); err != nil {
		t.Fatal(err)
	}
	return up, circuit
}

func wireVector(circuit *sta.Circuit, seed int64) []service.Event {
	events := sta.SynthEvents(circuit, seed)
	vec := make([]service.Event, len(events))
	for k, ev := range events {
		dir := "rise"
		if ev.Dir.String() == "falling" {
			dir = "fall"
		}
		vec[k] = service.Event{Net: ev.Net.Name, Dir: dir, TTPs: ev.TT * 1e12, TimePs: ev.Time * 1e12}
	}
	return vec
}

// TestServeDrainsOnSIGTERM: a SIGTERM while a batch is in flight must let
// the batch finish (200, full results), exit serveListeners cleanly, and
// log the drain with its duration. This was the satellite bugfix: the old
// drain path wrote nothing structured about what it waited for.
func TestServeDrainsOnSIGTERM(t *testing.T) {
	base, _, logs, done := startDaemon(t, false)
	up, circuit := uploadDrainNetlist(t, base, 3000)

	const nVec = 64
	vecs := make([][]service.Event, nVec)
	for i := range vecs {
		vecs[i] = wireVector(circuit, int64(i))
	}
	reqDone := make(chan error, 1)
	var resp service.BatchResponse
	go func() {
		reqDone <- postJSON(base+"/v1/analyze:batch", service.BatchRequest{Netlist: up.ID, Vectors: vecs}, &resp)
	}()

	// Give the batch a moment to be admitted, then signal ourselves.
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight batch was cut off by the drain: %v", err)
	}
	if len(resp.Results) != nVec {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), nVec)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveListeners returned %v after graceful drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serveListeners did not exit after SIGTERM")
	}

	// The structured shutdown story must be in the log: the draining line
	// with the in-flight count and the drained line with a duration.
	var sawDraining, sawDrained bool
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q", line)
		}
		switch rec["msg"] {
		case "shutdown signal received, draining":
			sawDraining = true
			if _, ok := rec["inFlight"].(float64); !ok {
				t.Fatalf("draining line lacks inFlight: %v", rec)
			}
		case "drained":
			sawDrained = true
			if d, ok := rec["drainDur"].(string); !ok || d == "" {
				t.Fatalf("drained line lacks drainDur: %v", rec)
			}
		}
	}
	if !sawDraining || !sawDrained {
		t.Fatalf("shutdown log incomplete (draining=%v drained=%v):\n%s", sawDraining, sawDrained, logs.String())
	}
}

// The ops listener must serve pprof and the service's metrics off the
// service port.
func TestOpsListener(t *testing.T) {
	base, opsBase, _, done := startDaemon(t, true)
	up, circuit := uploadDrainNetlist(t, base, 200)
	var ar service.AnalyzeResponse
	if err := postJSON(base+"/v1/analyze", service.AnalyzeRequest{Netlist: up.ID, Vector: wireVector(circuit, 1)}, &ar); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/healthz", "/metrics?format=prom"} {
		resp, err := http.Get(opsBase + path)
		if err != nil {
			t.Fatalf("ops %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ops %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics?format=prom" && !strings.Contains(string(body), "stad_requests_total") {
			t.Fatalf("ops metrics missing counters:\n%s", body)
		}
	}
	// pprof must NOT be reachable on the service port.
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof exposed on the service port")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveListeners returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serveListeners did not exit after SIGTERM")
	}
}
