package main

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/validate"
	"repro/internal/vtc"
)

// extCorners re-characterizes and re-validates the NAND3 at slow/typical/
// fast process corners: the macromodel methodology (thresholds from the
// corner's own VTCs, tables from the corner's own simulations) should hold
// its accuracy across corners even as absolute delays shift substantially.
func (r *rig) extCorners(n int) error {
	base := cells.DefaultProcess()
	corners := []struct {
		name             string
		kpScale, vtScale float64
	}{
		{"slow", 0.8, 1.1},
		{"typical", 1.0, 1.0},
		{"fast", 1.2, 0.9},
	}
	fmt.Printf("%-10s %10s %10s %28s\n", "corner", "Vil (V)", "Δ1(500ps)", "delay err (mean/std/min/max)")
	for _, c := range corners {
		proc := base.Corner(c.name, c.kpScale, c.vtScale)
		cell, err := cells.New(cells.Nand, 3, proc, cells.DefaultGeometry())
		if err != nil {
			return err
		}
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.01)
		if err != nil {
			return fmt.Errorf("corner %s: %w", c.name, err)
		}
		sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		spec := macromodel.CoarseCharSpec()
		if !r.fast {
			spec = macromodel.DefaultCharSpec()
		}
		model, err := macromodel.CharacterizeGate(sim, spec)
		if err != nil {
			return fmt.Errorf("corner %s: %w", c.name, err)
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			return fmt.Errorf("corner %s: %w", c.name, err)
		}
		vspec := validate.DefaultSpec()
		vspec.N = n
		cmp, err := validate.Run(calc, sim, vspec)
		if err != nil {
			return fmt.Errorf("corner %s: %w", c.name, err)
		}
		ds := cmp.DelaySummary()
		d1 := model.Single(0, vspec.Dir).DelayAt(500e-12)
		fmt.Printf("%-10s %10.3f %8.0fps %7.2f/%5.2f/%6.2f/%6.2f\n",
			c.name, fam.Thresholds.Vil, ps(d1), ds.Mean, ds.StdDev, ds.Min, ds.Max)
	}
	fmt.Printf("\n(The methodology is self-calibrating: each corner gets its own thresholds\n and tables, so accuracy holds while absolute delays move.)\n")
	return nil
}
