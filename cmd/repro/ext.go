package main

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/validate"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// extCascade runs the end-to-end multi-stage experiment: a two-stage NAND
// cascade timed by the proximity-aware STA against the composed
// transistor-level simulation (not in the paper — the downstream application
// its introduction motivates).
func (r *rig) extCascade() error {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	wire := 40e-15

	nl, err := chain.Build(proc, []chain.GateSpec{
		{Name: "g1", Kind: cells.Nand, Geom: geom, Inputs: []string{"a", "b"}, Output: "n1", ExtraLoad: wire},
		{Name: "g2", Kind: cells.Nand, Geom: geom, Inputs: []string{"n1", "c"}, Output: "out", ExtraLoad: 100e-15},
	})
	if err != nil {
		return err
	}

	mkCalc := func(load float64) (*core.Calculator, waveform.Thresholds, error) {
		g := geom
		g.CLoad = load
		cell, err := cells.New(cells.Nand, 2, proc, g)
		if err != nil {
			return nil, waveform.Thresholds{}, err
		}
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			return nil, waveform.Thresholds{}, err
		}
		sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		spec := macromodel.DefaultCharSpec()
		if r.fast {
			spec = macromodel.CoarseCharSpec()
		}
		model, err := macromodel.CharacterizeGate(sim, spec)
		if err != nil {
			return nil, waveform.Thresholds{}, err
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			return nil, waveform.Thresholds{}, err
		}
		return calc, fam.Thresholds, nil
	}
	calc1, th, err := mkCalc(cells.InputCapacitance(proc, geom) + wire)
	if err != nil {
		return err
	}
	calc2, _, err := mkCalc(100e-15)
	if err != nil {
		return err
	}

	lib := sta.NewLibrary()
	lib.Add("s1", calc1)
	lib.Add("s2", calc2)
	c := sta.NewCircuit(lib)
	a, b, cin := c.Input("a"), c.Input("b"), c.Input("c")
	n1, err := c.AddGate("g1", "s1", "n1", a, b)
	if err != nil {
		return err
	}
	out, err := c.AddGate("g2", "s2", "out", n1, cin)
	if err != nil {
		return err
	}

	fmt.Printf("Two-stage NAND cascade, inputs a,b falling in close proximity; golden =\n")
	fmt.Printf("composed transistor-level simulation of the whole cascade.\n\n")
	fmt.Printf("%8s %8s %10s %16s %16s %16s\n",
		"τa (ps)", "τb (ps)", "s_ab (ps)", "golden (ps)", "prox STA (ps)", "conv STA (ps)")
	for _, cfg := range [][3]float64{
		{400e-12, 250e-12, 30e-12},
		{300e-12, 300e-12, 0},
		{800e-12, 150e-12, 100e-12},
		{500e-12, 500e-12, -60e-12},
	} {
		ttA, ttB, sep := cfg[0], cfg[1], cfg[2]
		events := []sta.PIEvent{
			{Net: a, Dir: waveform.Falling, Time: 0, TT: ttA},
			{Net: b, Dir: waveform.Falling, Time: sep, TT: ttB},
		}
		proxRes, err := c.Analyze(events, sta.Proximity)
		if err != nil {
			return err
		}
		convRes, err := c.Analyze(events, sta.Conventional)
		if err != nil {
			return err
		}
		pa, _ := proxRes.Arrival(out, waveform.Falling)
		ca, _ := convRes.Arrival(out, waveform.Falling)

		run, err := nl.Run([]chain.Stimulus{
			{Net: "a", Dir: waveform.Falling, TT: ttA, Cross: 0},
			{Net: "b", Dir: waveform.Falling, TT: ttB, Cross: sep},
		}, th, spice.DefaultOptions(), 0)
		if err != nil {
			return err
		}
		golden, err := run.CrossTime("out", waveform.Falling)
		if err != nil {
			return err
		}
		fmt.Printf("%8.0f %8.0f %10.0f %16.1f %9.1f (%4.1f%%) %9.1f (%4.1f%%)\n",
			ps(ttA), ps(ttB), ps(sep), ps(golden),
			ps(pa.Time), (pa.Time-golden)/golden*100,
			ps(ca.Time), (ca.Time-golden)/golden*100)
	}
	return nil
}

// extTechnology re-runs a mini Table 5-1 on the CGaAs-flavored process —
// the paper's stated future target — demonstrating the method is not tied
// to the CMOS deck.
func (r *rig) extTechnology(n int) error {
	proc := cells.CGaAsProcess()
	geom := cells.Geometry{WN: 6e-6, WP: 6e-6, L: 0.8e-6, CLoad: 60e-15}
	cell, err := cells.New(cells.Nand, 3, proc, geom)
	if err != nil {
		return err
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.005)
	if err != nil {
		return err
	}
	fmt.Printf("Process %s: Vdd=%.1fV, extracted thresholds Vil=%.3f Vih=%.3f\n",
		proc.Name, proc.Vdd, fam.Thresholds.Vil, fam.Thresholds.Vih)
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	spec := macromodel.CoarseCharSpec()
	if !r.fast {
		spec = macromodel.DefaultCharSpec()
	}
	model, err := macromodel.CharacterizeGate(sim, spec)
	if err != nil {
		return err
	}
	calc := core.NewCalculator(model)
	if err := core.CalibrateCorrection(calc, sim); err != nil {
		return err
	}
	vspec := validate.DefaultSpec()
	vspec.N = n
	cmp, err := validate.Run(calc, sim, vspec)
	if err != nil {
		return err
	}
	ds, ts := cmp.DelaySummary(), cmp.TTSummary()
	fmt.Printf("\n%-12s %10s %10s\n", "Quantity", "Delay", "Rise time")
	fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Mean error", ds.Mean, ts.Mean)
	fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Std-dev", ds.StdDev, ts.StdDev)
	fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Max error", ds.Max, ts.Max)
	fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Min error", ds.Min, ts.Min)
	return nil
}

// extNOR validates the model on a NOR3 in both directions, exercising the
// last-cause (series pull-up) path that the paper only sketches.
func (r *rig) extNOR(n int) error {
	cell, err := cells.New(cells.Nor, 3, cells.DefaultProcess(), cells.DefaultGeometry())
	if err != nil {
		return err
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.01)
	if err != nil {
		return err
	}
	fmt.Printf("NOR3 thresholds: Vil=%.3f Vih=%.3f\n", fam.Thresholds.Vil, fam.Thresholds.Vih)
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
	spec := macromodel.CoarseCharSpec()
	if !r.fast {
		spec = macromodel.DefaultCharSpec()
	}
	model, err := macromodel.CharacterizeGate(sim, spec)
	if err != nil {
		return err
	}
	calc := core.NewCalculator(model)
	if err := core.CalibrateCorrection(calc, sim); err != nil {
		return err
	}
	for _, dir := range []waveform.Direction{waveform.Rising, waveform.Falling} {
		vspec := validate.DefaultSpec()
		vspec.N = n
		vspec.Dir = dir
		cmp, err := validate.Run(calc, sim, vspec)
		if err != nil {
			return fmt.Errorf("NOR %v: %w", dir, err)
		}
		ds, ts := cmp.DelaySummary(), cmp.TTSummary()
		caus := model.Causation(dir)
		fmt.Printf("\ninputs %v (%v):\n", dir, caus)
		fmt.Printf("  delay errors: mean=%.2f%% std=%.2f%% [%.2f, %.2f]\n", ds.Mean, ds.StdDev, ds.Min, ds.Max)
		fmt.Printf("  tt errors:    mean=%.2f%% std=%.2f%% [%.2f, %.2f]\n", ts.Mean, ts.StdDev, ts.Min, ts.Max)
	}
	return nil
}

// extAnalytic compares the fitted closed-form backend against tables.
func (r *rig) extAnalytic(n int) error {
	vspec := validate.DefaultSpec()
	vspec.N = n

	cmp, err := validate.Run(r.calc, r.sim, vspec)
	if err != nil {
		return err
	}
	ds := cmp.DelaySummary()
	fmt.Printf("%-26s delay errors: mean=%6.2f%% std=%5.2f%% [%6.2f, %6.2f]\n",
		"table backend", ds.Mean, ds.StdDev, ds.Min, ds.Max)

	tableEntries := 0
	for _, d := range r.model.Duals {
		tableEntries += d.DelayRatio.Len() + d.TTRatio.Len()
	}
	for _, deg := range []int{4, 7} {
		am, err := macromodel.FitGate(r.model, deg)
		if err != nil {
			return err
		}
		coeffs := 0
		for _, a := range am.Duals {
			coeffs += a.Delay.NumCoeffs() + a.TT.NumCoeffs()
		}
		cmp, err := validate.Run(&core.Calculator{Model: r.model, Dual: &core.AnalyticBackend{Model: am}}, r.sim, vspec)
		if err != nil {
			return err
		}
		ds := cmp.DelaySummary()
		fmt.Printf("%-26s delay errors: mean=%6.2f%% std=%5.2f%% [%6.2f, %6.2f]  (%d->%d entries, x%.0f smaller, fit RMS %.3f)\n",
			fmt.Sprintf("analytic degree %d", deg), ds.Mean, ds.StdDev, ds.Min, ds.Max,
			tableEntries, coeffs, float64(tableEntries)/float64(coeffs), am.Duals[0].DelayRMS)
	}
	fmt.Printf("\n(Closed forms exist, as the paper conjectures, but global polynomials\n saturate near 5%% error: the surfaces have kinks at the proximity-window\n and dominance boundaries that resist low-degree fits.)\n")
	return nil
}
