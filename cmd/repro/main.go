// Command repro regenerates every table and figure of the paper's
// evaluation from this repository's implementation:
//
//	repro -fig 1-2     delay / transition time vs. input separation (NAND3)
//	repro -fig 2-1     VTC family and threshold table
//	repro -fig 3-3     dominance crossover sweep (model vs. simulation)
//	repro -fig 4-2     macromodel storage complexity
//	repro -table 5-1   random-configuration validation summary
//	repro -fig 5-1     validation error histograms
//	repro -fig 6-1     glitch magnitude vs. separation + inertial delay
//	repro -table baseline   inverter-collapse baseline comparison
//	repro -all         everything above
//
// -fast switches to coarse characterization grids; -cache FILE reuses a
// characterized model across runs.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to regenerate (1-2, 2-1, 3-3, 4-2, 5-1, 6-1)")
		table = flag.String("table", "", "table to regenerate (5-1, baseline)")
		all   = flag.Bool("all", false, "regenerate everything")
		fast  = flag.Bool("fast", false, "use coarse characterization grids")
		cache = flag.String("cache", "", "model cache file (JSON); created if absent")
		n     = flag.Int("n", 100, "validation sample count for Table 5-1 / Fig 5-1 / baseline")
		ext   = flag.String("ext", "", "extension experiment (cascade, cgaas, nor, analytic, current, pulse, pairs, corners, aoi)")
	)
	flag.Parse()

	if !*all && *fig == "" && *table == "" && *ext == "" {
		flag.Usage()
		os.Exit(2)
	}

	rig, err := buildRig(*fast, *cache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n================ %s ================\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := func(kind, id string) bool {
		if *all {
			return true
		}
		return (kind == "fig" && *fig == id) || (kind == "table" && *table == id) ||
			(kind == "ext" && *ext == id)
	}

	if want("fig", "2-1") {
		run("Figure 2-1: VTC family and thresholds", rig.figure21)
	}
	if want("fig", "1-2") {
		run("Figure 1-2: delay and transition time vs. separation", rig.figure12)
	}
	if want("fig", "3-3") {
		run("Figure 3-3: dominance crossover", rig.figure33)
	}
	if want("fig", "4-2") {
		run("Figure 4-2: storage complexity", rig.figure42)
	}
	if want("table", "5-1") {
		run("Table 5-1: model vs. simulation", func() error { return rig.table51(*n, false) })
	}
	if want("fig", "5-1") {
		run("Figure 5-1: error distributions", func() error { return rig.table51(*n, true) })
	}
	if want("fig", "6-1") {
		run("Figure 6-1: glitch magnitude and inertial delay", rig.figure61)
	}
	if want("table", "baseline") {
		run("Baseline: inverter-collapse comparison", func() error { return rig.baseline(*n) })
	}
	if want("ext", "cascade") {
		run("Extension: proximity-aware STA vs. composed simulation", rig.extCascade)
	}
	if want("ext", "cgaas") {
		run("Extension: technology portability (CGaAs process)", func() error { return rig.extTechnology(min(*n, 40)) })
	}
	if want("ext", "nor") {
		run("Extension: NOR3 validation (both directions)", func() error { return rig.extNOR(min(*n, 40)) })
	}
	if want("ext", "analytic") {
		run("Extension: closed-form analytic macromodels", func() error { return rig.extAnalytic(min(*n, 40)) })
	}
	if want("ext", "current") {
		run("Extension: peak supply current vs. proximity", rig.extCurrent)
	}
	if want("ext", "pulse") {
		run("Extension: minimum transmittable pulse width", rig.extPulse)
	}
	if want("ext", "aoi") {
		run("Extension: complex-gate (AOI21) pair proximity", rig.extAOI)
	}
	if want("ext", "corners") {
		run("Extension: process-corner robustness", func() error { return rig.extCorners(min(*n, 25)) })
	}
	if want("ext", "pairs") {
		run("Extension: per-reference vs. full-matrix dual models", func() error { return rig.extPairs(min(*n, 40)) })
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
