package main

import (
	"fmt"
	"repro/internal/core"
	"repro/internal/validate"

	"repro/internal/macromodel"
	"repro/internal/table"
	"repro/internal/waveform"
)

// extCurrent sweeps the peak Vdd supply current of the NAND3 versus the
// separation of two falling inputs. Proximity concentrates the pull-up
// current in time, raising the peak — the quantity the paper's reference
// [13] (Nabavi-Lishi & Rumin) built its inverter-collapse models for.
func (r *rig) extCurrent() error {
	fmt.Printf("Peak Vdd supply current vs. separation (a falls 500ps, b falls 100ps, c at Vdd):\n\n")
	fmt.Printf("%10s %16s %14s\n", "s_ab (ps)", "peak I(Vdd) (mA)", "at time (ps)")
	var worst, baseline float64
	seps := table.LinSpace(-400e-12, 800e-12, 13)
	for _, s := range seps {
		res, err := r.sim.Run([]macromodel.PinStim{
			{Pin: 0, Dir: waveform.Falling, TT: 500e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: s},
		})
		if err != nil {
			return err
		}
		peak, at := res.PeakSupplyCurrent()
		fmt.Printf("%10.0f %16.3f %14.0f\n", ps(s), peak*1e3, ps(at))
		if s == seps[0] {
			baseline = peak
		}
		if peak > worst {
			worst = peak
		}
	}
	if baseline > 0 {
		fmt.Printf("\n(worst-case/far-separated peak ratio: %.2f — overlapping transitions\n concentrate the charging and crowbar currents, so supply-current models\n must track input proximity too)\n",
			worst/baseline)
	}
	return nil
}

// extPairs quantifies the paper's Figure 4-2 storage claim ("we need only n
// macromodels for the dual-input case"): per-reference tables vs. the full
// n(n-1) pair matrix, on identical random configurations.
func (r *rig) extPairs(n int) error {
	spec := macromodel.DefaultCharSpec()
	if r.fast {
		spec = macromodel.CoarseCharSpec()
	}
	spec.Pairs = macromodel.FullMatrix
	fmt.Printf("characterizing the full pair matrix (%d dual tables)...\n",
		r.model.NumInputs*(r.model.NumInputs-1)*2)
	matrixModel, err := macromodel.CharacterizeGate(r.sim, spec)
	if err != nil {
		return err
	}
	matrixCalc := core.NewCalculator(matrixModel)
	if err := core.CalibrateCorrection(matrixCalc, r.sim); err != nil {
		return err
	}
	vspec := validate.DefaultSpec()
	vspec.N = n
	fmt.Printf("\n%-34s %28s %28s\n", "policy", "delay err (mean/std/min/max)", "rise err (mean/std/min/max)")
	for _, v := range []struct {
		name string
		calc *core.Calculator
	}{
		{"per-reference (paper: 2n tables)", r.calc},
		{"full matrix (n^2-n+n tables)", matrixCalc},
	} {
		cmp, err := validate.Run(v.calc, r.sim, vspec)
		if err != nil {
			return err
		}
		ds, ts := cmp.DelaySummary(), cmp.TTSummary()
		fmt.Printf("%-34s %6.2f/%5.2f/%6.2f/%6.2f %6.2f/%5.2f/%7.2f/%6.2f\n",
			v.name, ds.Mean, ds.StdDev, ds.Min, ds.Max, ts.Mean, ts.StdDev, ts.Min, ts.Max)
	}
	fmt.Printf("\n(Observation: on this gate the per-reference economy preserves DELAY\n accuracy but roughly doubles the transition-time spread; the full matrix\n recovers it at n(n-1)/n times the storage.)\n")
	return nil
}

// extPulse characterizes the same-pin pulse model (Section 6's closing
// remark) and prints the minimum transmittable pulse width across edge-rate
// corners.
func (r *rig) extPulse() error {
	spec := macromodel.DefaultPulseGrid()
	if r.fast {
		spec.TausFirst = spec.TausFirst[:2]
		spec.TausSecond = spec.TausSecond[:2]
	}
	pm, err := r.sim.CharacterizePulse(0, waveform.Falling, spec)
	if err != nil {
		return err
	}
	r.model.Pulses = append(r.model.Pulses, pm)

	fmt.Printf("Minimum transmittable pulse width on input a of the NAND3 (low pulse,\n")
	fmt.Printf("output glitches toward Vdd; complete when the peak passes Vih=%.2fV):\n\n", r.th.Vih)
	fmt.Printf("%14s %14s %18s\n", "τ_fall (ps)", "τ_rise (ps)", "min width (ps)")
	floor := spec.Widths[0]
	for _, t1 := range []float64{100e-12, 500e-12, 1.4e-9} {
		for _, t2 := range []float64{100e-12, 500e-12, 1.4e-9} {
			w, ok := pm.MinWidth(t1, t2, r.th)
			switch {
			case !ok:
				fmt.Printf("%14.0f %14.0f %18s\n", ps(t1), ps(t2), "none in range")
			case w <= floor:
				// Slow edges stretch every realizable full-swing pulse past
				// the filtering boundary: the edges themselves carry enough
				// width.
				fmt.Printf("%14.0f %14.0f %18s\n", ps(t1), ps(t2), "any realizable")
			default:
				fmt.Printf("%14.0f %14.0f %18.0f\n", ps(t1), ps(t2), ps(w))
			}
		}
	}
	fmt.Printf("\n(A pulse narrower than this is swallowed by the gate — the classic\n inertial-delay abstraction, grounded in the same proximity physics.)\n")
	return nil
}
