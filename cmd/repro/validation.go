package main

import (
	"fmt"

	"repro/internal/collapse"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/validate"
	"repro/internal/waveform"
)

// table51 reproduces Table 5-1 (and, with histograms=true, Figure 5-1):
// n random NAND3 configurations, model vs. transistor-level simulation.
// Both dual-input backends are reported: the characterized tables and the
// paper's direct-simulation methodology.
func (r *rig) table51(n int, histograms bool) error {
	spec := validate.DefaultSpec()
	spec.N = n

	type variant struct {
		name string
		calc *core.Calculator
	}
	variants := []variant{
		{"table-backed dual model", r.calc},
		{"simulation-backed dual model (paper §5 methodology)",
			&core.Calculator{Model: r.model, Dual: core.NewSimBackend(r.sim.Clone())}},
	}

	for _, v := range variants {
		cmp, err := validate.Run(v.calc, r.sim, spec)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		ds := cmp.DelaySummary()
		ts := cmp.TTSummary()
		fmt.Printf("\n%s (n=%d):\n", v.name, n)
		fmt.Printf("%-12s %10s %10s\n", "Quantity", "Delay", "Rise time")
		fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Mean error", ds.Mean, ts.Mean)
		fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Std-dev", ds.StdDev, ts.StdDev)
		fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Max error", ds.Max, ts.Max)
		fmt.Printf("%-12s %9.2f%% %9.2f%%\n", "Min error", ds.Min, ts.Min)
		if histograms {
			hd, err := stats.NewHistogram(cmp.DelayErrors(), -15, 15, 12)
			if err != nil {
				return err
			}
			ht, err := stats.NewHistogram(cmp.TTErrors(), -20, 20, 12)
			if err != nil {
				return err
			}
			fmt.Printf("\n%s\n", hd.Render("Delay error distribution (%)"))
			fmt.Printf("%s\n", ht.Render("Rise-time error distribution (%)"))
		}
	}
	fmt.Printf("\nPaper's Table 5-1 for reference: delay mean 1.4%%, std 2.46%%, max 8.54%%, min -6.94%%;\n")
	fmt.Printf("rise time mean -1.33%%, std 4.82%%, max 11.51%%, min -13.15%%.\n")
	return nil
}

// baseline compares the proximity model against the series-parallel
// inverter-collapse baseline on the same random configurations.
func (r *rig) baseline(n int) error {
	spec := validate.DefaultSpec()
	spec.N = n
	cmp, err := validate.Run(r.calc, r.sim, spec)
	if err != nil {
		return err
	}

	coll := collapse.New(r.cell, r.sim.Opt, r.th)
	var proxErr, collErr []float64
	for _, s := range cmp.Samples {
		stims := make([]macromodel.PinStim, len(s.TTs))
		refIdx := 0
		for p := range s.TTs {
			stims[p] = macromodel.PinStim{Pin: p, Dir: spec.Dir, TT: s.TTs[p], Cross: s.Seps[p]}
			if p == s.Dominant {
				refIdx = p
			}
		}
		cd, _, err := coll.PredictDelayFrom(stims, refIdx)
		if err != nil {
			return fmt.Errorf("collapse predict: %w", err)
		}
		if s.ActualDelay != 0 {
			proxErr = append(proxErr, s.DelayErrPct)
			collErr = append(collErr, (cd-s.ActualDelay)/s.ActualDelay*100)
		}
	}
	ps := stats.Summarize(proxErr)
	cs := stats.Summarize(collErr)
	fmt.Printf("Delay error vs. golden simulation over %d random NAND3 configurations:\n\n", n)
	fmt.Printf("%-44s %8s %8s %8s %8s\n", "method", "mean%", "std%", "max%", "min%")
	fmt.Printf("%-44s %8.2f %8.2f %8.2f %8.2f\n", "proximity model (this paper)", ps.Mean, ps.StdDev, ps.Max, ps.Min)
	fmt.Printf("%-44s %8.2f %8.2f %8.2f %8.2f\n", "series-parallel inverter collapse [8]/[13]", cs.Mean, cs.StdDev, cs.Max, cs.Min)
	fmt.Printf("\n(The paper's motivation: collapse-based methods 'give significant errors'\n for delay and output transition time; the compositional model does not.)\n")
	return nil
}

// figure61 reproduces Figure 6-1(b): glitch magnitude versus separation for
// a falling (τ=500 ps) against b rising (τ in {100, 500, 1000} ps), plus the
// derived minimum separation (inertial delay).
func (r *rig) figure61() error {
	const ttFall = 500e-12
	fmt.Printf("Minimum output voltage vs. separation s (fall of a measured from rise of b);\n")
	fmt.Printf("Vil threshold = %.3f V — below it the output transition is complete.\n\n", r.th.Vil)

	seps := table.LinSpace(-1.5e-9, 1.0e-9, 21)
	fmt.Printf("%10s", "s (ps)")
	rises := []float64{100e-12, 500e-12, 1000e-12}
	for _, tr := range rises {
		fmt.Printf(" %14s", fmt.Sprintf("τb=%.0fps", ps(tr)))
	}
	fmt.Println()
	for _, s := range seps {
		fmt.Printf("%10.0f", ps(s))
		for _, tr := range rises {
			v, err := r.sim.RunGlitch(0, 1, ttFall, tr, s)
			if err != nil {
				return err
			}
			fmt.Printf(" %14.3f", v)
		}
		fmt.Println()
	}

	// Inertial delay from the characterized glitch model.
	fmt.Printf("\nInertial delay (minimum separation for a complete transition, from the\ncharacterized glitch macromodel):\n")
	for _, tr := range rises {
		sep, ok, err := core.InertialDelay(r.model, 0, 1, ttFall, tr)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("  τb=%4.0fps: no separation in the characterized range completes the transition\n", ps(tr))
			continue
		}
		fmt.Printf("  τb=%4.0fps: s_min = %.0f ps\n", ps(tr), ps(sep))
	}
	_ = waveform.Rising
	return nil
}
