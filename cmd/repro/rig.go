package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// rig bundles the characterized NAND3 all experiments share.
type rig struct {
	cell  *cells.Cell
	fam   *vtc.Family
	th    waveform.Thresholds
	sim   *macromodel.GateSim
	model *macromodel.GateModel
	calc  *core.Calculator
	fast  bool
}

// buildRig constructs the paper's Figure 1-1 gate (3-input NAND), extracts
// thresholds, and characterizes (or loads) the macromodels.
func buildRig(fast bool, cachePath string) (*rig, error) {
	proc := cells.DefaultProcess()
	geom := cells.DefaultGeometry()
	cell, err := cells.New(cells.Nand, 3, proc, geom)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "repro: extracting VTC family...\n")
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.01)
	if err != nil {
		return nil, err
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)

	var model *macromodel.GateModel
	if cachePath != "" {
		if m, err := macromodel.Load(cachePath); err == nil {
			fmt.Fprintf(os.Stderr, "repro: loaded model cache %s\n", cachePath)
			model = m
		}
	}
	if model == nil {
		spec := macromodel.DefaultCharSpec()
		if fast {
			spec = macromodel.CoarseCharSpec()
		}
		fmt.Fprintf(os.Stderr, "repro: characterizing gate (fast=%v)...\n", fast)
		t0 := time.Now()
		model, err = macromodel.CharacterizeGate(sim, spec)
		if err != nil {
			return nil, err
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			return nil, err
		}
		// Glitch model for the Section-6 pair (a falls, b rises).
		gg := macromodel.DefaultGlitchGrid()
		if fast {
			gg.TausFall = gg.TausFall[:2]
			gg.TausRise = gg.TausRise[:2]
		}
		gm, err := sim.CharacterizeGlitch(0, 1, gg)
		if err != nil {
			return nil, err
		}
		model.Glitches = append(model.Glitches, gm)
		fmt.Fprintf(os.Stderr, "repro: characterization done in %.1fs\n", time.Since(t0).Seconds())
		if cachePath != "" {
			if err := model.Save(cachePath); err != nil {
				fmt.Fprintf(os.Stderr, "repro: warning: cannot save cache: %v\n", err)
			}
		}
	}
	return &rig{
		cell:  cell,
		fam:   fam,
		th:    fam.Thresholds,
		sim:   sim,
		model: model,
		calc:  core.NewCalculator(model),
		fast:  fast,
	}, nil
}

// ps formats seconds as picoseconds.
func ps(t float64) float64 { return t * 1e12 }
