package main

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/table"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// extAOI validates the proximity model on a complex AND-OR-INVERT gate:
// the paper's method is defined per sensitized input pair, so it transfers
// to series-parallel topologies beyond NAND/NOR. For each sensitizable pair
// the dual-input table is characterized and swept against golden two-input
// simulations.
func (r *rig) extAOI() error {
	cell, err := cells.NewComplex(cells.AOI21(), 3, cells.DefaultProcess(), cells.DefaultGeometry())
	if err != nil {
		return err
	}
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.01)
	if err != nil {
		return err
	}
	fmt.Printf("AOI21 (out = !((a AND b) OR c)): %d sensitizable VTCs, thresholds Vil=%.3f Vih=%.3f\n\n",
		len(fam.Curves), fam.Thresholds.Vil, fam.Thresholds.Vih)
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)

	taus := macromodel.DefaultTauGrid()
	grid := macromodel.DefaultDualGrid()
	if r.fast {
		taus = macromodel.CoarseDualGrid().Taus
		grid = macromodel.CoarseDualGrid()
	}

	pairs := []struct {
		ref, other int
		dir        waveform.Direction
	}{
		{0, 1, waveform.Rising},
		{0, 1, waveform.Falling},
		{0, 2, waveform.Rising},
		{0, 2, waveform.Falling},
	}
	fmt.Printf("%-10s %-8s %-36s %16s\n", "pair", "inputs", "causation", "worst |err| (%)")
	for _, pc := range pairs {
		pins := []int{pc.ref, pc.other}
		levels, err := cell.SensitizeFor(pins)
		if err != nil {
			return fmt.Errorf("sensitize %v: %w", pins, err)
		}
		s1, err := sim.CharacterizeSingle(pc.ref, pc.dir, taus)
		if err != nil {
			return err
		}
		s2, err := sim.CharacterizeSingle(pc.other, pc.dir, taus)
		if err != nil {
			return err
		}
		d12, err := sim.CharacterizeDual(pc.ref, pc.other, pc.dir, s1, s2, grid)
		if err != nil {
			return err
		}
		d21, err := sim.CharacterizeDual(pc.other, pc.ref, pc.dir, s2, s1, grid)
		if err != nil {
			return err
		}
		model := &macromodel.GateModel{
			Kind: cell.Kind.String(), NumInputs: 3, Th: fam.Thresholds, Load: cell.Load(),
			Singles: []*macromodel.SingleInputModel{s1, s2},
			Duals:   []*macromodel.DualInputModel{d12, d21},
		}
		kind := cell.SubsetCausation(pins, levels, pc.dir == waveform.Rising)
		caus := macromodel.FirstCause
		if kind == cells.LastCauseSubset {
			caus = macromodel.LastCause
		}
		model.SetCausation(pc.dir, caus)
		calc := core.NewCalculator(model)

		worst := 0.0
		for _, sep := range table.LinSpace(-200e-12, 200e-12, 9) {
			res, err := calc.Evaluate([]core.InputEvent{
				{Pin: pc.ref, Dir: pc.dir, TT: 400e-12, Cross: 0},
				{Pin: pc.other, Dir: pc.dir, TT: 200e-12, Cross: sep},
			})
			if err != nil {
				return err
			}
			run, err := sim.Run([]macromodel.PinStim{
				{Pin: pc.ref, Dir: pc.dir, TT: 400e-12, Cross: 0},
				{Pin: pc.other, Dir: pc.dir, TT: 200e-12, Cross: sep},
			})
			if err != nil {
				return err
			}
			refIdx := 0
			if res.Dominant == pc.other {
				refIdx = 1
			}
			actual, err := run.DelayFrom(refIdx)
			if err != nil {
				return err
			}
			if e := abs((res.Delay - actual) / actual * 100); e > worst {
				worst = e
			}
		}
		fmt.Printf("(%c,%c)      %-8v %-36v %16.2f\n",
			'a'+pc.ref, 'a'+pc.other, pc.dir, caus, worst)
	}
	fmt.Printf("\n(The same dominance/window machinery handles AND-like and OR-like pin\n pairs — the gate shape only decides which regime each pair is in.)\n")
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
