package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/table"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// figure21 prints the VTC family table of Figure 2-1(c) and the threshold
// policy result.
func (r *rig) figure21() error {
	fmt.Printf("VTC critical voltages for the 3-input NAND (all 2^3-1 switching subsets):\n\n")
	fmt.Printf("%-10s %8s %8s %8s\n", "switching", "Vil (V)", "Vih (V)", "Vm (V)")
	for _, c := range r.fam.Curves {
		fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", "{"+vtc.SubsetName(c.Subset)+"}", c.Vil, c.Vih, c.Vm)
	}
	fmt.Printf("\nThreshold policy (Section 2): min Vil / max Vih over the family\n")
	fmt.Printf("  Vil = %.3f V  (from subset {%s})\n", r.th.Vil, vtc.SubsetName(r.fam.MinVilSubset))
	fmt.Printf("  Vih = %.3f V  (from subset {%s})\n", r.th.Vih, vtc.SubsetName(r.fam.MaxVihSubset))
	fmt.Printf("  (paper's gate: Vil = 1.25 V, Vih = 3.37 V on its unpublished process)\n")
	return nil
}

// figure12 reproduces Figure 1-2: simulated delay and output transition time
// of the NAND3 versus separation between inputs a and b, for falling inputs
// (a slow 500 ps, b fast 100 ps; output rises) and rising inputs (output
// falls).
func (r *rig) figure12() error {
	seps := table.LinSpace(-600e-12, 700e-12, 27)
	type row struct {
		s, dA, dDom, tt float64
		dom             int
	}
	dir0 := waveform.Falling

	// dominant picks the input whose solo output response crosses the
	// measurement threshold first (the paper's dominance rule), using the
	// characterized single-input delays.
	dominant := func(dir waveform.Direction, s float64) int {
		da := r.model.Single(0, dir).DelayAt(500e-12)
		db := r.model.Single(1, dir).DelayAt(100e-12)
		if s+db < da {
			return 1
		}
		return 0
	}

	sweep := func(dir waveform.Direction) ([]row, error) {
		var rows []row
		for _, s := range seps {
			res, err := r.sim.Run([]macromodel.PinStim{
				{Pin: 0, Dir: dir, TT: 500e-12, Cross: 0},
				{Pin: 1, Dir: dir, TT: 100e-12, Cross: s},
			})
			if err != nil {
				return nil, err
			}
			dA, err := res.DelayFrom(0)
			if err != nil {
				return nil, err
			}
			dom := dominant(dir, s)
			dDom := dA
			if dom == 1 {
				dDom, err = res.DelayFrom(1)
				if err != nil {
					return nil, err
				}
			}
			tt, err := res.OutputTT()
			if err != nil {
				return nil, err
			}
			rows = append(rows, row{s, dA, dDom, tt, dom})
		}
		return rows, nil
	}

	fall, err := sweep(dir0)
	if err != nil {
		return fmt.Errorf("falling sweep: %w", err)
	}
	rise, err := sweep(waveform.Rising)
	if err != nil {
		return fmt.Errorf("rising sweep: %w", err)
	}

	print := func(rows []row, head1, head2 string) {
		fmt.Printf("%10s %4s %14s %14s %16s\n", "s_ab (ps)", "dom", head1+" from a", head1+" from dom", head2)
		for _, w := range rows {
			fmt.Printf("%10.0f %4s %14.1f %14.1f %16.1f\n",
				ps(w.s), string(rune('a'+w.dom)), ps(w.dA), ps(w.dDom), ps(w.tt))
		}
	}
	fmt.Printf("Inputs a,b falling (τa=500ps slow, τb=100ps fast, c at Vdd) -> output rises\n")
	fmt.Printf("(panels (a) delay and (b) output rise time)\n")
	print(fall, "Δ(ps)", "rise time (ps)")
	fmt.Printf("\nInputs a,b rising (series NMOS stack) -> output falls\n")
	fmt.Printf("(panels (c) delay and (d) output fall time; separation sign per s_ab = t_b - t_a)\n")
	print(rise, "Δ(ps)", "fall time (ps)")

	// Shape summary mirrored in the test suite.
	fmt.Printf("\nShape: falling pair — delay from a at blocked/far separation %.1f ps vs %.1f ps\n",
		ps(fall[len(fall)-1].dA), ps(fall[len(fall)/2].dA))
	fmt.Printf("       at coincidence (proximity speedup of the paper's panel (a)).\n")
	fmt.Printf("       rising pair — dominant-referenced delay %.1f ps coincident vs %.1f ps\n",
		ps(rise[len(rise)/2].dDom), ps(rise[0].dDom))
	fmt.Printf("       when well separated (the paper's decreasing panel (c)).\n")
	return nil
}

// figure33 reproduces Figure 3-3: delay versus separation with the dominance
// crossover, comparing the proximity model against simulation. τ_fall(a) is
// fixed at 500 ps; τ_fall(b) takes 100/500/1000 ps.
func (r *rig) figure33() error {
	const ttA = 500e-12
	dir := waveform.Falling
	for _, ttB := range []float64{100e-12, 500e-12, 1000e-12} {
		da := r.model.Single(0, dir).DelayAt(ttA)
		db := r.model.Single(1, dir).DelayAt(ttB)
		ta := r.model.Single(0, dir).OutTTAt(ttA)
		tb := r.model.Single(1, dir).OutTTAt(ttB)
		lo := -(db + tb)
		hi := da + ta
		crossover := da - db
		fmt.Printf("\nτa=500ps, τb=%.0fps: sweep s_ab in [%.0f, %.0f] ps; dominance crossover at s=%.0f ps\n",
			ps(ttB), ps(lo), ps(hi), ps(crossover))
		fmt.Printf("%10s %6s %16s %16s %10s\n", "s_ab (ps)", "dom", "model Δ (ps)", "sim Δ (ps)", "err (%)")
		for _, s := range table.LinSpace(lo, hi, 21) {
			res, err := r.calc.Evaluate([]core.InputEvent{
				{Pin: 0, Dir: dir, TT: ttA, Cross: 0},
				{Pin: 1, Dir: dir, TT: ttB, Cross: s},
			})
			if err != nil {
				return err
			}
			// Golden: measure from the model's dominant input.
			run, err := r.sim.Run([]macromodel.PinStim{
				{Pin: 0, Dir: dir, TT: ttA, Cross: 0},
				{Pin: 1, Dir: dir, TT: ttB, Cross: s},
			})
			if err != nil {
				return err
			}
			ref := 0
			if res.Dominant == 1 {
				ref = 1
			}
			actual, err := run.DelayFrom(ref)
			if err != nil {
				return err
			}
			errPct := 0.0
			if actual != 0 {
				errPct = (res.Delay - actual) / actual * 100
			}
			fmt.Printf("%10.0f %6s %16.1f %16.1f %10.2f\n",
				ps(s), string(rune('a'+res.Dominant)), ps(res.Delay), ps(actual), errPct)
		}
	}
	fmt.Printf("\n(The jump in delay at the crossover matches the paper: the measurement\n reference changes when the dominant input changes.)\n")
	return nil
}

// figure42 prints the storage-complexity comparison.
func (r *rig) figure42() error {
	const pointsPerAxis = 10
	fmt.Printf("Macromodel storage for ONE quantity (delay), %d points per table axis:\n\n", pointsPerAxis)
	fmt.Printf("%7s %42s %12s %14s\n", "fan-in", "strategy", "tables", "entries")
	for n := 2; n <= 8; n++ {
		for _, c := range core.StorageComplexity(n, pointsPerAxis) {
			fmt.Printf("%7d %42s %12d %14.3g\n", c.Inputs, c.Option.String(), c.Tables, c.Entries)
		}
	}
	fmt.Printf("\n(The paper's observation: n single + n dual macromodels suffice — the\n per-reference row — versus the hopeless p^(2n-1) growth of the full model.)\n")
	return nil
}
