// Command charz characterizes a library cell into a JSON macromodel file:
// single-input delay/transition models, dual-input proximity tables, the
// step-input correction and optional glitch models. The resulting file can
// be loaded for table-only evaluation with no simulator in the loop.
//
//	charz -gate nand3 -o nand3.json
//	charz -gate nand2 -fast -glitch a:b -o nand2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/vtc"
)

func main() {
	var (
		gateName = flag.String("gate", "nand3", "cell: inv, nandN, norN")
		out      = flag.String("o", "", "output JSON path (default <gate>.json)")
		fast     = flag.Bool("fast", false, "coarse characterization grids")
		glitch   = flag.String("glitch", "", "comma-separated fall:rise pin pairs for glitch models, e.g. a:b")
		matrix   = flag.Bool("matrix", false, "characterize the full n(n-1) dual-input pair matrix")
		loadFF   = flag.Float64("cl", 100, "output load in fF")
	)
	flag.Parse()
	if err := run(*gateName, *out, *fast, *glitch, *matrix, *loadFF); err != nil {
		fmt.Fprintf(os.Stderr, "charz: %v\n", err)
		os.Exit(1)
	}
}

func run(gateName, outPath string, fast bool, glitch string, matrix bool, loadFF float64) error {
	kind, n, err := parseGate(gateName)
	if err != nil {
		return err
	}
	geom := cells.DefaultGeometry()
	geom.CLoad = loadFF * 1e-15
	cell, err := cells.New(kind, n, cells.DefaultProcess(), geom)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "charz: extracting VTC family of %s...\n", gateName)
	fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.01)
	if err != nil {
		return err
	}
	sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)

	spec := macromodel.DefaultCharSpec()
	if fast {
		spec = macromodel.CoarseCharSpec()
	}
	if matrix {
		spec.Pairs = macromodel.FullMatrix
	}
	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "charz: characterizing (fast=%v, matrix=%v)...\n", fast, matrix)
	model, err := macromodel.CharacterizeGate(sim, spec)
	if err != nil {
		return err
	}
	if n >= 2 {
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			return err
		}
	}
	if glitch != "" {
		grid := macromodel.DefaultGlitchGrid()
		if fast {
			grid.TausFall = grid.TausFall[:2]
			grid.TausRise = grid.TausRise[:2]
		}
		for _, pair := range strings.Split(glitch, ",") {
			fp, rp, err := parsePair(pair, n)
			if err != nil {
				return err
			}
			gm, err := sim.CharacterizeGlitch(fp, rp, grid)
			if err != nil {
				return err
			}
			model.Glitches = append(model.Glitches, gm)
		}
	}
	fmt.Fprintf(os.Stderr, "charz: done in %.1fs (%d singles, %d duals, %d glitches)\n",
		time.Since(t0).Seconds(), len(model.Singles), len(model.Duals), len(model.Glitches))

	if outPath == "" {
		outPath = gateName + ".json"
	}
	if err := model.Save(outPath); err != nil {
		return err
	}
	info, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	fmt.Printf("charz: wrote %s (%d bytes)\n", outPath, info.Size())
	return nil
}

// parsePair parses "a:b" into pin indices.
func parsePair(s string, n int) (fall, rise int, err error) {
	fields := strings.Split(strings.TrimSpace(s), ":")
	if len(fields) != 2 || len(fields[0]) != 1 || len(fields[1]) != 1 {
		return 0, 0, fmt.Errorf("bad glitch pair %q (want fall:rise, e.g. a:b)", s)
	}
	fall = int(fields[0][0] - 'a')
	rise = int(fields[1][0] - 'a')
	if fall < 0 || fall >= n || rise < 0 || rise >= n || fall == rise {
		return 0, 0, fmt.Errorf("glitch pair %q out of range for %d-input gate", s, n)
	}
	return fall, rise, nil
}

// parseGate resolves nandN/norN names.
func parseGate(name string) (cells.Kind, int, error) {
	if name == "inv" {
		return cells.Inv, 1, nil
	}
	for prefix, kind := range map[string]cells.Kind{"nand": cells.Nand, "nor": cells.Nor} {
		if strings.HasPrefix(name, prefix) {
			n, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
			if err == nil && n >= 2 && n <= 8 {
				return kind, n, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("unknown gate %q (want inv, nandN, norN with 2<=N<=8)", name)
}
