package prox

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus ablations of the design choices called out in DESIGN.md.
// Each benchmark times the core computation of its experiment and prints a
// one-shot compact summary of the reproduced rows (the full tables come from
// cmd/repro).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/collapse"
	"repro/internal/core"
	"repro/internal/macromodel"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/validate"
	"repro/internal/vtc"
	"repro/internal/waveform"
)

// benchRig is the shared characterized NAND3 for all benchmarks.
type benchRig struct {
	cell  *cells.Cell
	fam   *vtc.Family
	sim   *macromodel.GateSim
	model *macromodel.GateModel
	calc  *core.Calculator
}

var (
	bOnce sync.Once
	bRig  *benchRig
	bErr  error
)

func getBenchRig(b *testing.B) *benchRig {
	b.Helper()
	bOnce.Do(func() {
		cell := cells.MustNew(cells.Nand, 3, cells.DefaultProcess(), cells.DefaultGeometry())
		fam, err := vtc.Extract(cell, spice.DefaultOptions(), 0.02)
		if err != nil {
			bErr = err
			return
		}
		sim := macromodel.NewGateSim(cell, spice.DefaultOptions(), fam.Thresholds)
		model, err := macromodel.CharacterizeGate(sim, macromodel.DefaultCharSpec())
		if err != nil {
			bErr = err
			return
		}
		calc := core.NewCalculator(model)
		if err := core.CalibrateCorrection(calc, sim); err != nil {
			bErr = err
			return
		}
		gm, err := sim.CharacterizeGlitch(0, 1, macromodel.GlitchGridSpec{
			TausFall: []float64{100e-12, 500e-12, 1e-9},
			TausRise: []float64{100e-12, 500e-12, 1e-9},
			Seps:     []float64{-1e-9, -0.5e-9, 0, 0.4e-9, 0.8e-9, 1.2e-9, 1.6e-9},
		})
		if err != nil {
			bErr = err
			return
		}
		model.Glitches = append(model.Glitches, gm)
		bRig = &benchRig{cell: cell, fam: fam, sim: sim, model: model, calc: calc}
	})
	if bErr != nil {
		b.Fatal(bErr)
	}
	return bRig
}

var printOnce sync.Map

func oncePrint(key, msg string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(msg)
	}
}

// BenchmarkFig1_2 times the golden two-input transient behind each point of
// Figure 1-2 and reports the headline proximity speedup.
func BenchmarkFig1_2(b *testing.B) {
	r := getBenchRig(b)
	measure := func(sep float64) float64 {
		res, err := r.sim.Run([]macromodel.PinStim{
			{Pin: 0, Dir: waveform.Falling, TT: 500e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: sep},
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := res.DelayFrom(0)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	near, far := measure(0), measure(2e-9)
	oncePrint("fig1-2", fmt.Sprintf("fig1-2: NAND3 delay coincident %.0fps vs blocked %.0fps (speedup x%.2f)\n",
		near*1e12, far*1e12, far/near))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measure(float64(i%7-3) * 100e-12)
	}
}

// BenchmarkFig2_1 times VTC-family extraction (the 2^n-1 DC sweeps).
func BenchmarkFig2_1(b *testing.B) {
	r := getBenchRig(b)
	oncePrint("fig2-1", fmt.Sprintf("fig2-1: thresholds Vil=%.3fV (subset {%s}) Vih=%.3fV (subset {%s})\n",
		r.fam.Thresholds.Vil, vtc.SubsetName(r.fam.MinVilSubset),
		r.fam.Thresholds.Vih, vtc.SubsetName(r.fam.MaxVihSubset)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := cells.MustNew(cells.Nand, 3, cells.DefaultProcess(), cells.DefaultGeometry())
		if _, err := vtc.Extract(cell, spice.DefaultOptions(), 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_3 times the model evaluation behind each Figure 3-3 sweep
// point (dominance identification + dual-model application).
func BenchmarkFig3_3(b *testing.B) {
	r := getBenchRig(b)
	da := r.model.Single(0, waveform.Falling).DelayAt(500e-12)
	db := r.model.Single(1, waveform.Falling).DelayAt(1000e-12)
	oncePrint("fig3-3", fmt.Sprintf("fig3-3: dominance crossover for τa=500ps/τb=1000ps at s=%.0fps\n",
		(da-db)*1e12))
	seps := []float64{-400e-12, -200e-12, 0, 100e-12, 200e-12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := r.calc.Evaluate([]core.InputEvent{
			{Pin: 0, Dir: waveform.Falling, TT: 500e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 1000e-12, Cross: seps[i%len(seps)]},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_2 times the storage-complexity evaluation.
func BenchmarkFig4_2(b *testing.B) {
	c := core.StorageComplexity(3, 10)
	oncePrint("fig4-2", fmt.Sprintf("fig4-2: n=3,p=10 entries — full %.3g, matrix %.3g, per-ref %.3g\n",
		c[0].Entries, c[1].Entries, c[2].Entries))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 2; n <= 8; n++ {
			core.StorageComplexity(n, 10)
		}
	}
}

// BenchmarkTable5_1 times one validation sample (model + golden simulation)
// and prints the Table 5-1 stats over a 40-sample sweep.
func BenchmarkTable5_1(b *testing.B) {
	r := getBenchRig(b)
	spec := validate.DefaultSpec()
	spec.N = 40
	if _, loaded := printOnce.LoadOrStore("table5-1", true); !loaded {
		cmp, err := validate.Run(r.calc, r.sim, spec)
		if err != nil {
			b.Fatal(err)
		}
		ds, ts := cmp.DelaySummary(), cmp.TTSummary()
		fmt.Printf("table5-1 (n=40, table backend): delay mean=%.2f%% std=%.2f%% [%.2f,%.2f] | rise mean=%.2f%% std=%.2f%% [%.2f,%.2f]\n",
			ds.Mean, ds.StdDev, ds.Min, ds.Max, ts.Mean, ts.StdDev, ts.Min, ts.Max)
		fmt.Printf("table5-1 paper reference:      delay mean=1.40%% std=2.46%% [-6.94,8.54] | rise mean=-1.33%% std=4.82%% [-13.15,11.51]\n")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := validate.RunOne(r.calc, r.sim, waveform.Falling,
			[]float64{300e-12, 700e-12, 1.2e-9},
			[]float64{0, 120e-12, -200e-12})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_1 times histogram construction over validation errors.
func BenchmarkFig5_1(b *testing.B) {
	r := getBenchRig(b)
	spec := validate.DefaultSpec()
	spec.N = 12
	cmp, err := validate.Run(r.calc, r.sim, spec)
	if err != nil {
		b.Fatal(err)
	}
	errs := cmp.DelayErrors()
	h, err := stats.NewHistogram(errs, -15, 15, 12)
	if err != nil {
		b.Fatal(err)
	}
	peak, peakAt := 0, 0
	for i, c := range h.Counts {
		if c > peak {
			peak, peakAt = c, i
		}
	}
	oncePrint("fig5-1", fmt.Sprintf("fig5-1: delay-error histogram peak %d/%d samples in bin centered %.1f%%\n",
		peak, len(errs), h.BinCenter(peakAt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.NewHistogram(errs, -15, 15, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_1 times one glitch-magnitude simulation and prints the
// characterized inertial delays.
func BenchmarkFig6_1(b *testing.B) {
	r := getBenchRig(b)
	var line string
	for _, tr := range []float64{100e-12, 500e-12, 1000e-12} {
		sep, ok, err := core.InertialDelay(r.model, 0, 1, 500e-12, tr)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			line += fmt.Sprintf(" τrise=%.0fps->s_min=%.0fps", tr*1e12, sep*1e12)
		}
	}
	oncePrint("fig6-1", "fig6-1: inertial delay (τfall=500ps):"+line+"\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.sim.RunGlitch(0, 1, 500e-12, 500e-12, float64(i%5)*200e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineCollapse times the inverter-collapse baseline prediction
// and prints its accuracy against the proximity model.
func BenchmarkBaselineCollapse(b *testing.B) {
	r := getBenchRig(b)
	coll := collapse.New(r.cell, spice.DefaultOptions(), r.fam.Thresholds)
	stims := []macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 1500e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: 150e-12},
		{Pin: 2, Dir: waveform.Falling, TT: 600e-12, Cross: -100e-12},
	}
	if _, loaded := printOnce.LoadOrStore("baseline", true); !loaded {
		run, err := r.sim.Run(stims)
		if err != nil {
			b.Fatal(err)
		}
		// Reference the model's dominant input.
		res, err := r.calc.Evaluate([]core.InputEvent{
			{Pin: 0, Dir: waveform.Falling, TT: 1500e-12, Cross: 0},
			{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: 150e-12},
			{Pin: 2, Dir: waveform.Falling, TT: 600e-12, Cross: -100e-12},
		})
		if err != nil {
			b.Fatal(err)
		}
		refIdx := res.Dominant
		actual, err := run.DelayFrom(refIdx)
		if err != nil {
			b.Fatal(err)
		}
		pred, _, err := coll.PredictDelayFrom(stims, refIdx)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("baseline: golden %.0fps | proximity %.0fps (%.1f%%) | collapse %.0fps (%.1f%%)\n",
			actual*1e12, res.Delay*1e12, (res.Delay-actual)/actual*100,
			pred*1e12, (pred-actual)/actual*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coll.Predict(stims); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCorrection compares step-case accuracy with and without
// the Section-4 corrective term.
func BenchmarkAblationCorrection(b *testing.B) {
	r := getBenchRig(b)
	step := r.model.Singles[0].TauAxis[0]
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: step, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: step, Cross: 0},
		{Pin: 2, Dir: waveform.Falling, TT: step, Cross: 0},
	}
	if _, loaded := printOnce.LoadOrStore("abl-corr", true); !loaded {
		with, err := r.calc.Evaluate(events)
		if err != nil {
			b.Fatal(err)
		}
		noCorr := &core.Calculator{Model: r.model, DisableCorrection: true}
		without, err := noCorr.Evaluate(events)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ablation-correction: coincident steps — with %.0fps, without %.0fps (correction %.0fps)\n",
			with.Delay*1e12, without.Delay*1e12, with.CorrectionApplied*1e12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.calc.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackend compares the table backend against the
// direct-simulation backend on one configuration.
func BenchmarkAblationBackend(b *testing.B) {
	r := getBenchRig(b)
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 900e-12, Cross: -100e-12},
	}
	simCalc := &core.Calculator{Model: r.model, Dual: core.NewSimBackend(r.sim.Clone())}
	if _, loaded := printOnce.LoadOrStore("abl-backend", true); !loaded {
		tbl, err := r.calc.Evaluate(events)
		if err != nil {
			b.Fatal(err)
		}
		simr, err := simCalc.Evaluate(events)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ablation-backend: table %.1fps vs direct-sim %.1fps (Δ %.1f%%)\n",
			tbl.Delay*1e12, simr.Delay*1e12, (tbl.Delay-simr.Delay)/simr.Delay*100)
	}
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.calc.Evaluate(events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-sim-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := simCalc.Evaluate(events); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationThresholds compares the paper's min-Vil/max-Vih policy
// against naive Vdd/2 thresholds: the naive choice yields negative delays
// for slow inputs dominating late.
func BenchmarkAblationThresholds(b *testing.B) {
	r := getBenchRig(b)
	if _, loaded := printOnce.LoadOrStore("abl-th", true); !loaded {
		// The failure mode of Section 2: with ALL inputs falling together
		// very slowly, the relevant VTC is the all-switching curve, whose
		// Vm is well above Vdd/2 — so the output rises through Vdd/2
		// BEFORE the inputs fall through it, and the naive measurement
		// goes negative. The paper's min-Vil/max-Vih policy cannot.
		half := waveform.Thresholds{Vil: 2.4999, Vih: 2.5001, Vdd: 5}
		negNaive, negPaper, total := 0, 0, 0
		for _, tau := range []float64{5e-9, 10e-9, 20e-9} {
			stims := []macromodel.PinStim{
				{Pin: 0, Dir: waveform.Falling, TT: tau, Cross: 0},
				{Pin: 1, Dir: waveform.Falling, TT: tau, Cross: 0},
				{Pin: 2, Dir: waveform.Falling, TT: tau, Cross: 0},
			}
			res, err := r.sim.Run(stims)
			if err != nil {
				b.Fatal(err)
			}
			total++
			tinN, ok := res.PWLs[0].CrossTime(half.Level(waveform.Falling), waveform.Falling, -1)
			if ok {
				if toutN, err := half.OutputCross(res.Out, waveform.Rising); err == nil && toutN-tinN < 0 {
					negNaive++
				}
			}
			if d, err := res.DelayFrom(0); err == nil && d < 0 {
				negPaper++
			}
		}
		fmt.Printf("ablation-thresholds: all-switching slow falls — Vdd/2 policy: %d/%d negative delays; paper policy: %d/%d\n",
			negNaive, total, negPaper, total)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.fam.Thresholds.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOrdering compares dominance ordering against naive
// arrival ordering around the crossover.
func BenchmarkAblationOrdering(b *testing.B) {
	r := getBenchRig(b)
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 1000e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: 50e-12},
	}
	naive := &core.Calculator{Model: r.model, NaiveOrdering: true}
	if _, loaded := printOnce.LoadOrStore("abl-ord", true); !loaded {
		dom, err := r.calc.Evaluate(events)
		if err != nil {
			b.Fatal(err)
		}
		nv, err := naive.Evaluate(events)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("ablation-ordering: dominance picks %c (Δ=%.0fps), arrival order picks %c (Δ=%.0fps)\n",
			'a'+rune(dom.Dominant), dom.Delay*1e12, 'a'+rune(nv.Dominant), nv.Delay*1e12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := naive.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures the raw model-evaluation rate — the cost a
// proximity-aware STA pays per gate.
func BenchmarkEvaluate(b *testing.B) {
	r := getBenchRig(b)
	events := []core.InputEvent{
		{Pin: 0, Dir: waveform.Falling, TT: 400e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 250e-12, Cross: 60e-12},
		{Pin: 2, Dir: waveform.Falling, TT: 800e-12, Cross: -120e-12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.calc.Evaluate(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientNAND3 measures the simulator itself (one golden run).
func BenchmarkTransientNAND3(b *testing.B) {
	r := getBenchRig(b)
	stims := []macromodel.PinStim{
		{Pin: 0, Dir: waveform.Falling, TT: 500e-12, Cross: 0},
		{Pin: 1, Dir: waveform.Falling, TT: 100e-12, Cross: 100e-12},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.sim.Run(stims); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTAAnalyze measures proximity-aware timing of the example
// NAND-adder carry circuit.
func BenchmarkSTAAnalyze(b *testing.B) {
	r := getBenchRig(b)
	// Reuse the NAND3 model as a 3-input library gate plus a NAND2-like
	// arc set — build a small all-NAND3 tree.
	lib := sta.NewLibrary()
	lib.Add("nand3", r.calc)
	c := sta.NewCircuit(lib)
	in := make([]*sta.Net, 6)
	for i := range in {
		in[i] = c.Input(fmt.Sprintf("i%d", i))
	}
	n1, err := c.AddGate("g1", "nand3", "n1", in[0], in[1], in[2])
	if err != nil {
		b.Fatal(err)
	}
	n2, err := c.AddGate("g2", "nand3", "n2", in[3], in[4], in[5])
	if err != nil {
		b.Fatal(err)
	}
	out, err := c.AddGate("g3", "nand3", "out", n1, n2, in[0])
	if err != nil {
		b.Fatal(err)
	}
	_ = out
	events := make([]sta.PIEvent, 6)
	for i := range events {
		events[i] = sta.PIEvent{Net: in[i], Dir: waveform.Falling,
			Time: float64(i) * 30e-12, TT: 300e-12}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Analyze(events, sta.Proximity); err != nil {
			b.Fatal(err)
		}
	}
}

// staBench lazily builds the shared ≥10k-gate synthetic netlist for the
// scaling benchmarks (no transient simulation behind the library, so the
// cost measured is purely the proximity STA engine).
var (
	staBenchOnce sync.Once
	staBenchC    *sta.Circuit
	staBenchEvs  []sta.PIEvent
	staBenchErr  error
)

func getSTABench(b *testing.B) (*sta.Circuit, []sta.PIEvent) {
	b.Helper()
	staBenchOnce.Do(func() {
		staBenchC, staBenchErr = sta.SynthRandom(128, 12000, 11)
		if staBenchErr == nil {
			staBenchEvs = sta.SynthEvents(staBenchC, 5)
		}
	})
	if staBenchErr != nil {
		b.Fatal(staBenchErr)
	}
	return staBenchC, staBenchEvs
}

// BenchmarkAnalyzeParallel measures the levelized parallel Analyze on a
// 12k-gate synthetic netlist across worker counts; workers=1 is the serial
// baseline the speedup is read against.
func BenchmarkAnalyzeParallel(b *testing.B) {
	c, evs := getSTABench(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.AnalyzeOpts(evs, sta.Proximity, sta.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeBatch measures the heavy-traffic shape: N independent
// stimulus vectors streamed through one shared levelization.
func BenchmarkAnalyzeBatch(b *testing.B) {
	c, _ := getSTABench(b)
	batch := make([][]sta.PIEvent, 16)
	for i := range batch {
		batch[i] = sta.SynthEvents(c, int64(i))
	}
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.AnalyzeBatch(batch, sta.Proximity, sta.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
